//! Load traces: mean query rate as a function of the epoch.

/// A time-varying mean query rate.
pub trait LoadTrace {
    /// Mean queries per epoch at `epoch`.
    fn rate(&self, epoch: u64) -> f64;
}

/// A constant rate (the paper's steady state, λ = 3000).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantTrace(pub f64);

impl LoadTrace for ConstantTrace {
    fn rate(&self, _epoch: u64) -> f64 {
        self.0
    }
}

/// The Fig. 4 Slashdot effect: base rate until `spike_start`, linear ramp to
/// `peak` over `ramp_epochs`, then linear decay back to base over
/// `decay_epochs`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlashdotTrace {
    /// Base mean rate (paper: 3000).
    pub base: f64,
    /// Peak mean rate (paper: 183 000).
    pub peak: f64,
    /// Epoch at which the spike begins (paper: 100).
    pub spike_start: u64,
    /// Ramp duration in epochs (paper: 25).
    pub ramp_epochs: u64,
    /// Decay duration in epochs (paper: 250).
    pub decay_epochs: u64,
}

impl SlashdotTrace {
    /// The exact Fig. 4 parameters.
    pub fn paper() -> Self {
        Self {
            base: 3_000.0,
            peak: 183_000.0,
            spike_start: 100,
            ramp_epochs: 25,
            decay_epochs: 250,
        }
    }
}

impl LoadTrace for SlashdotTrace {
    fn rate(&self, epoch: u64) -> f64 {
        let ramp_end = self.spike_start + self.ramp_epochs;
        let decay_end = ramp_end + self.decay_epochs;
        if epoch < self.spike_start || epoch >= decay_end {
            self.base
        } else if epoch < ramp_end {
            let t = (epoch - self.spike_start) as f64 / self.ramp_epochs as f64;
            self.base + t * (self.peak - self.base)
        } else {
            let t = (epoch - ramp_end) as f64 / self.decay_epochs as f64;
            self.peak - t * (self.peak - self.base)
        }
    }
}

/// Piecewise-constant rate from breakpoints `(from_epoch, rate)`; the rate
/// of the last breakpoint at or before the epoch applies.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseTrace {
    segments: Vec<(u64, f64)>,
}

impl PiecewiseTrace {
    /// Builds a trace from breakpoints sorted by epoch.
    ///
    /// # Panics
    /// Panics if `segments` is empty, unsorted, or doesn't start at epoch 0.
    pub fn new(segments: Vec<(u64, f64)>) -> Self {
        assert!(!segments.is_empty(), "need at least one segment");
        assert_eq!(segments[0].0, 0, "first segment must start at epoch 0");
        assert!(
            segments.windows(2).all(|w| w[0].0 < w[1].0),
            "segments must be strictly increasing in epoch"
        );
        Self { segments }
    }
}

impl LoadTrace for PiecewiseTrace {
    fn rate(&self, epoch: u64) -> f64 {
        match self.segments.binary_search_by_key(&epoch, |s| s.0) {
            Ok(i) => self.segments[i].1,
            Err(i) => self.segments[i - 1].1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let t = ConstantTrace(3000.0);
        assert_eq!(t.rate(0), 3000.0);
        assert_eq!(t.rate(1_000_000), 3000.0);
    }

    #[test]
    fn slashdot_matches_paper_shape() {
        let t = SlashdotTrace::paper();
        assert_eq!(t.rate(0), 3000.0);
        assert_eq!(t.rate(99), 3000.0);
        // Peak reached at epoch 125.
        assert_eq!(t.rate(125), 183_000.0);
        // Midway through the ramp.
        let mid = t.rate(112);
        assert!(mid > 3000.0 && mid < 183_000.0);
        // Decaying after the peak.
        assert!(t.rate(200) < 183_000.0);
        assert!(t.rate(200) > t.rate(300));
        // Back to base at 125 + 250 = 375.
        assert_eq!(t.rate(375), 3000.0);
        assert_eq!(t.rate(1000), 3000.0);
    }

    #[test]
    fn slashdot_is_monotone_on_ramp_and_decay() {
        let t = SlashdotTrace::paper();
        for e in 100..124 {
            assert!(t.rate(e + 1) >= t.rate(e), "ramp must rise at {e}");
        }
        for e in 125..374 {
            assert!(t.rate(e + 1) <= t.rate(e), "decay must fall at {e}");
        }
    }

    #[test]
    fn piecewise_lookup() {
        let t = PiecewiseTrace::new(vec![(0, 10.0), (5, 20.0), (10, 5.0)]);
        assert_eq!(t.rate(0), 10.0);
        assert_eq!(t.rate(4), 10.0);
        assert_eq!(t.rate(5), 20.0);
        assert_eq!(t.rate(9), 20.0);
        assert_eq!(t.rate(10), 5.0);
        assert_eq!(t.rate(99), 5.0);
    }

    #[test]
    #[should_panic(expected = "epoch 0")]
    fn piecewise_must_start_at_zero() {
        let _ = PiecewiseTrace::new(vec![(1, 10.0)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn piecewise_must_be_sorted() {
        let _ = PiecewiseTrace::new(vec![(0, 10.0), (5, 20.0), (5, 30.0)]);
    }
}
