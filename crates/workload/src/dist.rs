//! Random distributions used by the paper's workloads.
//!
//! Implemented from first principles over `rand::Rng` (the `rand_distr`
//! crate is deliberately avoided to keep the dependency set to the allowed
//! list): inverse-transform Pareto, Knuth/normal-approximation Poisson and
//! CDF-table Zipf.

use rand::Rng;

/// Pareto (type I) distribution.
///
/// The paper writes "Pareto(1, 50)" without naming the parameter order; we
/// read it as `(shape α = 1, scale x_m = 50)` — a heavy-tailed popularity
/// with minimum 50 — which matches the skewed, Slashdot-prone traffic the
/// paper motivates (a shape of 50 would be nearly deterministic). See
/// DESIGN.md §3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    /// Shape α > 0 (smaller ⇒ heavier tail).
    pub shape: f64,
    /// Scale x_m > 0 (the minimum value).
    pub scale: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Panics
    /// Panics unless both parameters are positive and finite.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape > 0.0 && shape.is_finite(), "shape must be positive");
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
        Self { shape, scale }
    }

    /// The paper's popularity distribution, Pareto(1, 50).
    pub fn paper() -> Self {
        Self::new(1.0, 50.0)
    }

    /// Draws one sample by inverse transform: `x_m / U^(1/α)`.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        // Guard against U = 0 (probability ~2^-53 but would yield +inf).
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        self.scale / u.powf(1.0 / self.shape)
    }

    /// Draws `n` samples.
    pub fn sample_n(&self, rng: &mut impl Rng, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Poisson distribution with mean `lambda`.
///
/// Uses Knuth's product method below λ = 30 and a rounded normal
/// approximation (Box–Muller) above — the paper's λ ranges from 3 000 to
/// 183 000, deep in the regime where the normal approximation's relative
/// error is negligible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    /// Mean event count per draw.
    pub lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution.
    ///
    /// # Panics
    /// Panics unless `lambda` is non-negative and finite.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda >= 0.0 && lambda.is_finite(), "lambda must be ≥ 0");
        Self { lambda }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        if self.lambda == 0.0 {
            return 0;
        }
        if self.lambda < 30.0 {
            // Knuth: multiply uniforms until the product drops below e^-λ.
            let limit = (-self.lambda).exp();
            let mut product: f64 = rng.gen_range(0.0..1.0);
            let mut count = 0u64;
            while product > limit {
                product *= rng.gen_range(0.0f64..1.0);
                count += 1;
            }
            count
        } else {
            // Normal approximation N(λ, λ), clamped at zero.
            let z = box_muller(rng);
            let x = self.lambda + self.lambda.sqrt() * z;
            x.round().max(0.0) as u64
        }
    }
}

/// One standard-normal sample via Box–Muller.
fn box_muller(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Zipf distribution over ranks `1..=n` with exponent `s`, sampled from a
/// precomputed CDF table (O(log n) per draw).
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the CDF table for `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be ≥ 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there is a single rank.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n` (0 = most popular).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self.cdf.binary_search_by(|p| p.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn pareto_respects_scale_floor() {
        let d = Pareto::paper();
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) >= 50.0);
        }
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let d = Pareto::new(1.0, 1.0);
        let mut r = rng();
        let samples = d.sample_n(&mut r, 50_000);
        let over_10 = samples.iter().filter(|&&x| x > 10.0).count() as f64 / 50_000.0;
        // P(X > 10) = 1/10 for α=1.
        assert!((over_10 - 0.1).abs() < 0.02, "tail mass {over_10}");
    }

    #[test]
    fn pareto_shape_controls_tail() {
        let mut r = rng();
        let heavy = Pareto::new(1.0, 1.0).sample_n(&mut r, 20_000);
        let light = Pareto::new(3.0, 1.0).sample_n(&mut r, 20_000);
        let tail = |v: &[f64]| v.iter().filter(|&&x| x > 5.0).count();
        assert!(tail(&heavy) > 4 * tail(&light));
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let d = Poisson::new(4.0);
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r) as f64).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_mean_and_var() {
        let d = Poisson::new(3000.0);
        let mut r = rng();
        let n = 5_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r) as f64).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3000.0).abs() < 10.0, "mean {mean}");
        assert!(
            (var / 3000.0 - 1.0).abs() < 0.2,
            "variance ratio {}",
            var / 3000.0
        );
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let d = Poisson::new(0.0);
        let mut r = rng();
        assert_eq!(d.sample(&mut r), 0);
    }

    #[test]
    fn zipf_rank_zero_most_popular() {
        let z = Zipf::new(100, 1.0);
        let mut r = rng();
        let mut counts = vec![0u32; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        assert_eq!(z.len(), 100);
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        let mut r = rng();
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for &c in &counts {
            assert!((f64::from(c) / 10_000.0 - 1.0).abs() < 0.1);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let d = Pareto::paper();
        let a: Vec<f64> = d.sample_n(&mut StdRng::seed_from_u64(1), 16);
        let b: Vec<f64> = d.sample_n(&mut StdRng::seed_from_u64(1), 16);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn pareto_rejects_bad_shape() {
        let _ = Pareto::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn poisson_rejects_negative() {
        let _ = Poisson::new(-1.0);
    }
}
