//! Points in the six-level geographic hierarchy.

use std::fmt;

/// One level of the geographic hierarchy, ordered from the most significant
/// (continent) to the least significant (server).
///
/// The paper encodes the similarity of two locations as a 6-bit number with
/// "leftmost significance" (§II-B); [`Level::bit`] returns the bit position
/// each level occupies in that encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Continent — bit 5, the most significant location part.
    Continent,
    /// Country — bit 4.
    Country,
    /// Datacenter — bit 3.
    Datacenter,
    /// Room — bit 2.
    Room,
    /// Rack — bit 1.
    Rack,
    /// Individual server — bit 0, the least significant part.
    Server,
}

impl Level {
    /// All levels from most to least significant.
    pub const ALL: [Level; 6] = [
        Level::Continent,
        Level::Country,
        Level::Datacenter,
        Level::Room,
        Level::Rack,
        Level::Server,
    ];

    /// Bit position of this level in the 6-bit similarity encoding
    /// (continent = 5 … server = 0).
    #[inline]
    pub const fn bit(self) -> u8 {
        match self {
            Level::Continent => 5,
            Level::Country => 4,
            Level::Datacenter => 3,
            Level::Room => 2,
            Level::Rack => 1,
            Level::Server => 0,
        }
    }

    /// Depth of this level in the hierarchy (continent = 0 … server = 5).
    #[inline]
    pub const fn depth(self) -> usize {
        5 - self.bit() as usize
    }

    /// The next finer level, or `None` for [`Level::Server`].
    #[inline]
    pub const fn finer(self) -> Option<Level> {
        match self {
            Level::Continent => Some(Level::Country),
            Level::Country => Some(Level::Datacenter),
            Level::Datacenter => Some(Level::Room),
            Level::Room => Some(Level::Rack),
            Level::Rack => Some(Level::Server),
            Level::Server => None,
        }
    }

    /// The next coarser level, or `None` for [`Level::Continent`].
    #[inline]
    pub const fn coarser(self) -> Option<Level> {
        match self {
            Level::Continent => None,
            Level::Country => Some(Level::Continent),
            Level::Datacenter => Some(Level::Country),
            Level::Room => Some(Level::Datacenter),
            Level::Rack => Some(Level::Room),
            Level::Server => Some(Level::Rack),
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Level::Continent => "continent",
            Level::Country => "country",
            Level::Datacenter => "datacenter",
            Level::Room => "room",
            Level::Rack => "rack",
            Level::Server => "server",
        };
        f.write_str(name)
    }
}

/// A point in the six-level geographic hierarchy.
///
/// Each field holds the *local index* of the component within its parent
/// (e.g. `rack` is the rack number inside its room). Two locations share a
/// component only if they agree on **all coarser components too** — "rack 0
/// in datacenter A" and "rack 0 in datacenter B" are physically distinct
/// racks, which [`Location::shares_prefix_through`] accounts for.
///
/// Query clients are also represented as `Location`s: the workload layer
/// places a client in a country by using [`Location::client_in_country`],
/// which yields a synthetic path that diverges from every server of that
/// country at the datacenter level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Location {
    /// Continent index.
    pub continent: u16,
    /// Country index within the continent.
    pub country: u16,
    /// Datacenter index within the country.
    pub datacenter: u16,
    /// Room index within the datacenter.
    pub room: u16,
    /// Rack index within the room.
    pub rack: u16,
    /// Server index within the rack.
    pub server: u16,
}

/// Synthetic datacenter index marking "a client zone outside any datacenter".
const CLIENT_ZONE: u16 = u16::MAX;

impl Location {
    /// Builds a location from its six components, most significant first.
    #[inline]
    pub const fn new(
        continent: u16,
        country: u16,
        datacenter: u16,
        room: u16,
        rack: u16,
        server: u16,
    ) -> Self {
        Self {
            continent,
            country,
            datacenter,
            room,
            rack,
            server,
        }
    }

    /// The component at `level`.
    #[inline]
    pub const fn component(&self, level: Level) -> u16 {
        match level {
            Level::Continent => self.continent,
            Level::Country => self.country,
            Level::Datacenter => self.datacenter,
            Level::Room => self.room,
            Level::Rack => self.rack,
            Level::Server => self.server,
        }
    }

    /// Returns a copy with the component at `level` replaced.
    #[must_use]
    pub const fn with_component(mut self, level: Level, value: u16) -> Self {
        match level {
            Level::Continent => self.continent = value,
            Level::Country => self.country = value,
            Level::Datacenter => self.datacenter = value,
            Level::Room => self.room = value,
            Level::Rack => self.rack = value,
            Level::Server => self.server = value,
        }
        self
    }

    /// True when both locations agree on every component from
    /// [`Level::Continent`] down to and including `level`.
    pub fn shares_prefix_through(&self, other: &Location, level: Level) -> bool {
        for l in Level::ALL {
            if self.component(l) != other.component(l) {
                return false;
            }
            if l == level {
                return true;
            }
        }
        true
    }

    /// The coarsest level at which the two locations differ, or `None` if
    /// they are the same server.
    pub fn first_divergence(&self, other: &Location) -> Option<Level> {
        Level::ALL
            .into_iter()
            .find(|&l| self.component(l) != other.component(l))
    }

    /// A synthetic location for a query client situated in a country but in
    /// no particular datacenter. Its diversity to any server of the same
    /// country is the datacenter-level distance; to servers of other
    /// countries/continents the usual coarser distances apply.
    pub const fn client_in_country(continent: u16, country: u16) -> Self {
        Self::new(continent, country, CLIENT_ZONE, 0, 0, 0)
    }

    /// True when this location was produced by [`Location::client_in_country`].
    pub const fn is_client_zone(&self) -> bool {
        self.datacenter == CLIENT_ZONE
    }

    /// The `(continent, country)` prefix of this location.
    ///
    /// Because query clients live at country granularity (their synthetic
    /// datacenter never matches a real server's), the diversity between a
    /// client and a server — and therefore the eq.-(4) proximity weight —
    /// depends only on this prefix for every non-client-zone server.
    /// Proximity caches key on it.
    pub const fn country_key(&self) -> (u16, u16) {
        (self.continent, self.country)
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ct{}/co{}/dc{}/rm{}/rk{}/sv{}",
            self.continent, self.country, self.datacenter, self.room, self.rack, self.server
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_bits_are_leftmost_significant() {
        assert_eq!(Level::Continent.bit(), 5);
        assert_eq!(Level::Country.bit(), 4);
        assert_eq!(Level::Datacenter.bit(), 3);
        assert_eq!(Level::Room.bit(), 2);
        assert_eq!(Level::Rack.bit(), 1);
        assert_eq!(Level::Server.bit(), 0);
    }

    #[test]
    fn level_depth_inverts_bit() {
        for l in Level::ALL {
            assert_eq!(l.depth(), 5 - l.bit() as usize);
        }
    }

    #[test]
    fn finer_and_coarser_roundtrip() {
        for l in Level::ALL {
            if let Some(f) = l.finer() {
                assert_eq!(f.coarser(), Some(l));
            }
            if let Some(c) = l.coarser() {
                assert_eq!(c.finer(), Some(l));
            }
        }
        assert_eq!(Level::Server.finer(), None);
        assert_eq!(Level::Continent.coarser(), None);
    }

    #[test]
    fn component_accessors_match_fields() {
        let loc = Location::new(1, 2, 3, 4, 5, 6);
        assert_eq!(loc.component(Level::Continent), 1);
        assert_eq!(loc.component(Level::Country), 2);
        assert_eq!(loc.component(Level::Datacenter), 3);
        assert_eq!(loc.component(Level::Room), 4);
        assert_eq!(loc.component(Level::Rack), 5);
        assert_eq!(loc.component(Level::Server), 6);
    }

    #[test]
    fn with_component_replaces_one_field() {
        let loc = Location::new(0, 0, 0, 0, 0, 0).with_component(Level::Rack, 9);
        assert_eq!(loc.rack, 9);
        assert_eq!(loc.room, 0);
        assert_eq!(loc.server, 0);
    }

    #[test]
    fn shares_prefix_requires_all_coarser_components() {
        let a = Location::new(0, 1, 0, 0, 3, 0);
        let b = Location::new(0, 1, 0, 0, 3, 4);
        let c = Location::new(0, 2, 0, 0, 3, 0); // same rack index, other country
        assert!(a.shares_prefix_through(&b, Level::Rack));
        assert!(!a.shares_prefix_through(&c, Level::Rack));
        assert!(a.shares_prefix_through(&c, Level::Continent));
    }

    #[test]
    fn first_divergence_finds_coarsest_difference() {
        let a = Location::new(0, 1, 0, 0, 0, 0);
        let b = Location::new(0, 1, 2, 0, 0, 0);
        assert_eq!(a.first_divergence(&b), Some(Level::Datacenter));
        assert_eq!(a.first_divergence(&a), None);
        let d = Location::new(1, 1, 0, 0, 0, 0);
        assert_eq!(a.first_divergence(&d), Some(Level::Continent));
    }

    #[test]
    fn client_zone_diverges_at_datacenter() {
        let client = Location::client_in_country(0, 1);
        let server = Location::new(0, 1, 0, 0, 0, 0);
        assert!(client.is_client_zone());
        assert!(!server.is_client_zone());
        assert_eq!(client.first_divergence(&server), Some(Level::Datacenter));
    }

    #[test]
    fn country_key_is_the_two_level_prefix() {
        let loc = Location::new(3, 1, 2, 0, 1, 4);
        assert_eq!(loc.country_key(), (3, 1));
        assert_eq!(Location::client_in_country(3, 1).country_key(), (3, 1));
    }

    #[test]
    fn display_is_compact() {
        let loc = Location::new(1, 2, 3, 4, 5, 6);
        assert_eq!(loc.to_string(), "ct1/co2/dc3/rm4/rk5/sv6");
    }
}
