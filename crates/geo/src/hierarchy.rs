//! Cloud topology: how many children each level of the hierarchy has.

use crate::location::{Level, Location};

/// A regular physical layout of a data cloud: the number of children at each
/// level of the geographic hierarchy.
///
/// The paper's simulation (§III-A) uses 10 countries, 2 datacenters per
/// country, 1 room per datacenter, 2 racks per room and 5 servers per rack
/// (200 servers); [`Topology::paper`] builds exactly that layout with the 10
/// countries spread over 5 continents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    continents: u16,
    countries_per_continent: u16,
    datacenters_per_country: u16,
    rooms_per_datacenter: u16,
    racks_per_room: u16,
    servers_per_rack: u16,
}

impl Topology {
    /// Starts building a topology. All levels default to one child.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// The topology of the paper's simulated cloud: 5 continents × 2
    /// countries × 2 datacenters × 1 room × 2 racks × 5 servers = 200 servers.
    pub fn paper() -> Self {
        Self::builder()
            .continents(5)
            .countries_per_continent(2)
            .datacenters_per_country(2)
            .rooms_per_datacenter(1)
            .racks_per_room(2)
            .servers_per_rack(5)
            .build()
    }

    /// Number of children of a node at the *parent* of `level` — e.g.
    /// `fanout(Level::Country)` is countries per continent.
    pub fn fanout(&self, level: Level) -> u16 {
        match level {
            Level::Continent => self.continents,
            Level::Country => self.countries_per_continent,
            Level::Datacenter => self.datacenters_per_country,
            Level::Room => self.rooms_per_datacenter,
            Level::Rack => self.racks_per_room,
            Level::Server => self.servers_per_rack,
        }
    }

    /// Total number of distinct subtrees at `level` (e.g. total racks).
    pub fn count_at(&self, level: Level) -> u64 {
        let mut total = 1u64;
        for l in Level::ALL {
            total *= u64::from(self.fanout(l));
            if l == level {
                break;
            }
        }
        total
    }

    /// Total number of servers in the topology.
    pub fn server_count(&self) -> u64 {
        self.count_at(Level::Server)
    }

    /// Total number of countries in the topology.
    pub fn country_count(&self) -> u64 {
        self.count_at(Level::Country)
    }

    /// Enumerates every server location in deterministic (lexicographic)
    /// order.
    pub fn iter_servers(&self) -> impl Iterator<Item = Location> + '_ {
        let n = self.server_count();
        (0..n).map(move |i| self.server_at(i))
    }

    /// Enumerates every `(continent, country)` pair.
    pub fn iter_countries(&self) -> impl Iterator<Item = (u16, u16)> + Clone + '_ {
        (0..self.continents)
            .flat_map(move |ct| (0..self.countries_per_continent).map(move |co| (ct, co)))
    }

    /// Enumerates one synthetic client location per country, in
    /// [`Topology::iter_countries`] order. This is the uniform client
    /// population that normalizes the eq.-(4) proximity weight; iterating
    /// it directly lets hot paths evaluate the uniform baseline without
    /// materializing a region list per call.
    pub fn iter_client_locations(&self) -> impl Iterator<Item = Location> + Clone + '_ {
        self.iter_countries()
            .map(|(ct, co)| Location::client_in_country(ct, co))
    }

    /// The location of the `index`-th server in lexicographic order.
    ///
    /// # Panics
    /// Panics if `index >= self.server_count()`.
    pub fn server_at(&self, index: u64) -> Location {
        assert!(
            index < self.server_count(),
            "server index {index} out of range for topology with {} servers",
            self.server_count()
        );
        let mut rem = index;
        let sv = (rem % u64::from(self.servers_per_rack)) as u16;
        rem /= u64::from(self.servers_per_rack);
        let rk = (rem % u64::from(self.racks_per_room)) as u16;
        rem /= u64::from(self.racks_per_room);
        let rm = (rem % u64::from(self.rooms_per_datacenter)) as u16;
        rem /= u64::from(self.rooms_per_datacenter);
        let dc = (rem % u64::from(self.datacenters_per_country)) as u16;
        rem /= u64::from(self.datacenters_per_country);
        let co = (rem % u64::from(self.countries_per_continent)) as u16;
        rem /= u64::from(self.countries_per_continent);
        let ct = rem as u16;
        Location::new(ct, co, dc, rm, rk, sv)
    }

    /// Lexicographic index of a server location (inverse of
    /// [`Topology::server_at`]).
    pub fn index_of(&self, loc: &Location) -> u64 {
        let mut idx = u64::from(loc.continent);
        idx = idx * u64::from(self.countries_per_continent) + u64::from(loc.country);
        idx = idx * u64::from(self.datacenters_per_country) + u64::from(loc.datacenter);
        idx = idx * u64::from(self.rooms_per_datacenter) + u64::from(loc.room);
        idx = idx * u64::from(self.racks_per_room) + u64::from(loc.rack);
        idx * u64::from(self.servers_per_rack) + u64::from(loc.server)
    }

    /// True when `loc` denotes a server that exists in this topology.
    pub fn contains(&self, loc: &Location) -> bool {
        loc.continent < self.continents
            && loc.country < self.countries_per_continent
            && loc.datacenter < self.datacenters_per_country
            && loc.room < self.rooms_per_datacenter
            && loc.rack < self.racks_per_room
            && loc.server < self.servers_per_rack
    }
}

/// Builder for [`Topology`]; every level defaults to a fanout of one.
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    continents: u16,
    countries_per_continent: u16,
    datacenters_per_country: u16,
    rooms_per_datacenter: u16,
    racks_per_room: u16,
    servers_per_rack: u16,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        Self {
            continents: 1,
            countries_per_continent: 1,
            datacenters_per_country: 1,
            rooms_per_datacenter: 1,
            racks_per_room: 1,
            servers_per_rack: 1,
        }
    }
}

impl TopologyBuilder {
    /// Sets the number of continents.
    pub fn continents(mut self, n: u16) -> Self {
        self.continents = n;
        self
    }

    /// Sets the number of countries per continent.
    pub fn countries_per_continent(mut self, n: u16) -> Self {
        self.countries_per_continent = n;
        self
    }

    /// Sets the number of datacenters per country.
    pub fn datacenters_per_country(mut self, n: u16) -> Self {
        self.datacenters_per_country = n;
        self
    }

    /// Sets the number of rooms per datacenter.
    pub fn rooms_per_datacenter(mut self, n: u16) -> Self {
        self.rooms_per_datacenter = n;
        self
    }

    /// Sets the number of racks per room.
    pub fn racks_per_room(mut self, n: u16) -> Self {
        self.racks_per_room = n;
        self
    }

    /// Sets the number of servers per rack.
    pub fn servers_per_rack(mut self, n: u16) -> Self {
        self.servers_per_rack = n;
        self
    }

    /// Finalizes the topology.
    ///
    /// # Panics
    /// Panics if any level has a fanout of zero.
    pub fn build(self) -> Topology {
        let t = Topology {
            continents: self.continents,
            countries_per_continent: self.countries_per_continent,
            datacenters_per_country: self.datacenters_per_country,
            rooms_per_datacenter: self.rooms_per_datacenter,
            racks_per_room: self.racks_per_room,
            servers_per_rack: self.servers_per_rack,
        };
        for level in Level::ALL {
            assert!(
                t.fanout(level) > 0,
                "topology fanout at {level} must be positive"
            );
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diversity::diversity;
    use proptest::prelude::*;

    #[test]
    fn paper_topology_has_200_servers_in_10_countries() {
        let t = Topology::paper();
        assert_eq!(t.server_count(), 200);
        assert_eq!(t.country_count(), 10);
        assert_eq!(t.count_at(Level::Datacenter), 20);
        assert_eq!(t.count_at(Level::Room), 20);
        assert_eq!(t.count_at(Level::Rack), 40);
    }

    #[test]
    fn iter_servers_yields_distinct_valid_locations() {
        let t = Topology::paper();
        let servers: Vec<_> = t.iter_servers().collect();
        assert_eq!(servers.len(), 200);
        for s in &servers {
            assert!(t.contains(s));
        }
        let mut sorted = servers.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 200, "locations must be unique");
    }

    #[test]
    fn server_at_and_index_of_are_inverse() {
        let t = Topology::paper();
        for i in 0..t.server_count() {
            assert_eq!(t.index_of(&t.server_at(i)), i);
        }
    }

    #[test]
    fn same_rack_servers_have_low_diversity() {
        let t = Topology::paper();
        let a = t.server_at(0);
        let b = t.server_at(1);
        assert_eq!(diversity(&a, &b), 1, "adjacent servers share a rack");
    }

    #[test]
    fn iter_countries_enumerates_all() {
        let t = Topology::paper();
        let countries: Vec<_> = t.iter_countries().collect();
        assert_eq!(countries.len(), 10);
        assert!(countries.contains(&(4, 1)));
    }

    #[test]
    fn client_locations_match_countries() {
        let t = Topology::paper();
        let clients: Vec<_> = t.iter_client_locations().collect();
        assert_eq!(clients.len(), 10);
        for (client, (ct, co)) in clients.iter().zip(t.iter_countries()) {
            assert!(client.is_client_zone());
            assert_eq!(client.country_key(), (ct, co));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn server_at_panics_out_of_range() {
        let t = Topology::paper();
        let _ = t.server_at(200);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_fanout_rejected() {
        let _ = Topology::builder().continents(0).build();
    }

    proptest! {
        #[test]
        fn prop_roundtrip_arbitrary_topology(
            ct in 1u16..4, co in 1u16..4, dc in 1u16..3,
            rm in 1u16..3, rk in 1u16..3, sv in 1u16..5
        ) {
            let t = Topology::builder()
                .continents(ct)
                .countries_per_continent(co)
                .datacenters_per_country(dc)
                .rooms_per_datacenter(rm)
                .racks_per_room(rk)
                .servers_per_rack(sv)
                .build();
            let n = t.server_count();
            prop_assert_eq!(
                n,
                u64::from(ct) * u64::from(co) * u64::from(dc)
                    * u64::from(rm) * u64::from(rk) * u64::from(sv)
            );
            for i in 0..n {
                prop_assert_eq!(t.index_of(&t.server_at(i)), i);
            }
        }
    }
}
