//! A latency model over the geographic hierarchy.
//!
//! The diversity metric (§II-B) is an ordinal distance; for the paper's
//! future-work analysis ("analyze its performance regarding latency", §IV)
//! a cardinal mapping to round-trip times is needed. This module maps the
//! *first divergence level* of two locations to a configurable RTT, with
//! defaults drawn from typical datacenter/WAN numbers.

use crate::location::{Level, Location};

/// Round-trip times (in milliseconds) by the coarsest level at which two
/// locations diverge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Same physical server (loopback).
    pub same_server_ms: f64,
    /// Same rack, different server.
    pub rack_ms: f64,
    /// Same room, different rack.
    pub room_ms: f64,
    /// Same datacenter, different room.
    pub datacenter_ms: f64,
    /// Same country, different datacenter.
    pub country_ms: f64,
    /// Same continent, different country.
    pub continent_ms: f64,
    /// Different continents.
    pub intercontinental_ms: f64,
}

impl LatencyModel {
    /// Typical 2010-era WAN numbers: 0.1 ms loopback, 0.5 ms in-rack,
    /// 1 ms in-room, 2 ms cross-room, 10 ms cross-datacenter, 30 ms
    /// cross-country, 150 ms intercontinental.
    pub fn typical() -> Self {
        Self {
            same_server_ms: 0.1,
            rack_ms: 0.5,
            room_ms: 1.0,
            datacenter_ms: 2.0,
            country_ms: 10.0,
            continent_ms: 30.0,
            intercontinental_ms: 150.0,
        }
    }

    /// RTT between two locations, in milliseconds.
    pub fn rtt_ms(&self, a: &Location, b: &Location) -> f64 {
        match a.first_divergence(b) {
            None => self.same_server_ms,
            Some(Level::Server) => self.rack_ms,
            Some(Level::Rack) => self.room_ms,
            Some(Level::Room) => self.datacenter_ms,
            Some(Level::Datacenter) => self.country_ms,
            Some(Level::Country) => self.continent_ms,
            Some(Level::Continent) => self.intercontinental_ms,
        }
    }

    /// RTT for a given first-divergence level (`None` = same server).
    pub fn rtt_at(&self, level: Option<Level>) -> f64 {
        match level {
            None => self.same_server_ms,
            Some(Level::Server) => self.rack_ms,
            Some(Level::Rack) => self.room_ms,
            Some(Level::Room) => self.datacenter_ms,
            Some(Level::Datacenter) => self.country_ms,
            Some(Level::Country) => self.continent_ms,
            Some(Level::Continent) => self.intercontinental_ms,
        }
    }

    /// Checks the model is physically sensible (monotone in distance).
    ///
    /// # Panics
    /// Panics if any RTT is negative or the ladder is not non-decreasing.
    pub fn validate(&self) {
        let ladder = [
            self.same_server_ms,
            self.rack_ms,
            self.room_ms,
            self.datacenter_ms,
            self.country_ms,
            self.continent_ms,
            self.intercontinental_ms,
        ];
        for pair in ladder.windows(2) {
            assert!(pair[0] >= 0.0, "RTTs must be non-negative");
            assert!(
                pair[0] <= pair[1],
                "RTT must not decrease with distance: {} > {}",
                pair[0],
                pair[1]
            );
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diversity::diversity;
    use proptest::prelude::*;

    #[test]
    fn typical_model_is_valid_and_monotone() {
        LatencyModel::typical().validate();
    }

    #[test]
    fn rtt_ladder_matches_divergence() {
        let m = LatencyModel::typical();
        let base = Location::new(0, 0, 0, 0, 0, 0);
        assert_eq!(m.rtt_ms(&base, &base), 0.1);
        assert_eq!(m.rtt_ms(&base, &Location::new(0, 0, 0, 0, 0, 1)), 0.5);
        assert_eq!(m.rtt_ms(&base, &Location::new(0, 0, 0, 0, 1, 0)), 1.0);
        assert_eq!(m.rtt_ms(&base, &Location::new(0, 0, 0, 1, 0, 0)), 2.0);
        assert_eq!(m.rtt_ms(&base, &Location::new(0, 0, 1, 0, 0, 0)), 10.0);
        assert_eq!(m.rtt_ms(&base, &Location::new(0, 1, 0, 0, 0, 0)), 30.0);
        assert_eq!(m.rtt_ms(&base, &Location::new(1, 0, 0, 0, 0, 0)), 150.0);
    }

    #[test]
    fn rtt_at_level_agrees_with_rtt_ms() {
        let m = LatencyModel::typical();
        let a = Location::new(0, 0, 0, 0, 0, 0);
        let b = Location::new(0, 1, 0, 0, 0, 0);
        assert_eq!(m.rtt_ms(&a, &b), m.rtt_at(a.first_divergence(&b)));
    }

    #[test]
    #[should_panic(expected = "must not decrease")]
    fn inverted_ladder_rejected() {
        let mut m = LatencyModel::typical();
        m.rack_ms = 500.0;
        m.validate();
    }

    fn arb_location() -> impl Strategy<Value = Location> {
        (0u16..3, 0u16..3, 0u16..2, 0u16..2, 0u16..2, 0u16..3)
            .prop_map(|(a, b, c, d, e, f)| Location::new(a, b, c, d, e, f))
    }

    proptest! {
        #[test]
        fn prop_rtt_symmetric(a in arb_location(), b in arb_location()) {
            let m = LatencyModel::typical();
            prop_assert_eq!(m.rtt_ms(&a, &b), m.rtt_ms(&b, &a));
        }

        #[test]
        fn prop_rtt_monotone_in_diversity(
            a in arb_location(), b in arb_location(), c in arb_location()
        ) {
            let m = LatencyModel::typical();
            if diversity(&a, &b) <= diversity(&a, &c) {
                prop_assert!(m.rtt_ms(&a, &b) <= m.rtt_ms(&a, &c));
            }
        }
    }
}
