//! # skute-geo
//!
//! Geographic model underlying Skute's availability reasoning.
//!
//! The paper (Bonvin et al., ICDE 2010, §I–II) locates every physical server
//! in a six-level hierarchy — *continent, country, datacenter, room, rack,
//! server* — and approximates the availability of a data partition by the
//! **geographical diversity** of the servers hosting its replicas. This crate
//! provides:
//!
//! * [`Location`]: a point in the six-level hierarchy,
//! * [`diversity()`]: the paper's 6-bit NOT-of-similarity distance (eq. 2's
//!   `diversity(s_i, s_j)` term),
//! * [`Topology`]: a description of a cloud's physical layout plus iteration
//!   and enumeration helpers,
//! * [`ClientGeo`]: distributions of query clients over the hierarchy, used
//!   by eq. (4)'s proximity weight `g_j`.
//!
//! The crate is dependency-free and purely functional; all randomized
//! sampling lives in `skute-workload`.

#![warn(missing_docs)]

pub mod distribution;
pub mod diversity;
pub mod hierarchy;
pub mod latency;
pub mod location;

pub use distribution::{ClientGeo, RegionWeight};
pub use diversity::{diversity, diversity_between, normalized_diversity, Diversity, MAX_DIVERSITY};
pub use hierarchy::{Topology, TopologyBuilder};
pub use latency::LatencyModel;
pub use location::{Level, Location};
