//! The paper's 6-bit geographic diversity metric (§II-B).
//!
//! The distance between two servers is "represented as a 6 bit number, each
//! bit corresponding to the location parts of a server, namely continent,
//! country, data center, room, rack and server with leftmost significance.
//! The different location parts of both servers are compared one by one to
//! compute their similarity: if the location parts are equivalent, the
//! corresponding bit is set to 1, otherwise 0. A binary NOT operation is then
//! applied to the similarity to get the diversity value."
//!
//! Because a location component is only meaningfully "equivalent" when all
//! coarser components also match (rack 3 of datacenter A is not rack 3 of
//! datacenter B), similarity bits cascade: once a level differs, all finer
//! levels are treated as different. Diversity values are therefore always of
//! the form `2^m − 1`:
//!
//! | first differing level | similarity | diversity |
//! |---|---|---|
//! | none (same server)    | `111111`   | 0  |
//! | server                | `111110`   | 1  |
//! | rack                  | `111100`   | 3  |
//! | room                  | `111000`   | 7  |
//! | datacenter            | `110000`   | 15 |
//! | country               | `100000`   | 31 |
//! | continent             | `000000`   | 63 |

use crate::location::{Level, Location};

/// A diversity value in `0..=63` as produced by [`diversity`].
pub type Diversity = u8;

/// Largest possible diversity: two servers on different continents.
pub const MAX_DIVERSITY: Diversity = 0b11_1111;

/// Diversity of two locations whose coarsest differing level is `level`
/// (e.g. `Level::Country` → 31).
#[inline]
pub const fn diversity_between(level: Level) -> Diversity {
    // NOT of a similarity that has ones strictly above `level.bit()`.
    (1u8 << (level.bit() + 1)) - 1
}

/// The 6-bit similarity of two locations: bit `k` is set iff the locations
/// agree on the level with bit `k` *and every coarser level*.
#[inline]
pub fn similarity(a: &Location, b: &Location) -> u8 {
    let mut sim = 0u8;
    for level in Level::ALL {
        if a.component(level) == b.component(level) {
            sim |= 1 << level.bit();
        } else {
            break; // a difference at a coarse level invalidates finer matches
        }
    }
    sim
}

/// The paper's diversity metric: binary NOT of [`similarity`] restricted to
/// the low six bits. Symmetric, zero iff `a == b`, and monotone in the depth
/// of the first differing level.
#[inline]
pub fn diversity(a: &Location, b: &Location) -> Diversity {
    !similarity(a, b) & MAX_DIVERSITY
}

/// Diversity scaled to `[0, 1]` (`diversity / 63`), convenient for proximity
/// weighting where an absolute scale is needed.
#[inline]
pub fn normalized_diversity(a: &Location, b: &Location) -> f64 {
    f64::from(diversity(a, b)) / f64::from(MAX_DIVERSITY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn loc(ct: u16, co: u16, dc: u16, rm: u16, rk: u16, sv: u16) -> Location {
        Location::new(ct, co, dc, rm, rk, sv)
    }

    #[test]
    fn identical_servers_have_zero_diversity() {
        let a = loc(1, 2, 3, 4, 5, 6);
        assert_eq!(diversity(&a, &a), 0);
        assert_eq!(similarity(&a, &a), MAX_DIVERSITY);
    }

    #[test]
    fn paper_example_different_room() {
        // The paper's worked example: similarity 111000 → diversity 000111 = 7.
        let a = loc(0, 0, 0, 0, 0, 0);
        let b = loc(0, 0, 0, 1, 0, 0);
        assert_eq!(similarity(&a, &b), 0b11_1000);
        assert_eq!(diversity(&a, &b), 7);
    }

    #[test]
    fn diversity_ladder_matches_first_divergence() {
        let base = loc(0, 0, 0, 0, 0, 0);
        let cases = [
            (loc(1, 0, 0, 0, 0, 0), 63),
            (loc(0, 1, 0, 0, 0, 0), 31),
            (loc(0, 0, 1, 0, 0, 0), 15),
            (loc(0, 0, 0, 1, 0, 0), 7),
            (loc(0, 0, 0, 0, 1, 0), 3),
            (loc(0, 0, 0, 0, 0, 1), 1),
        ];
        for (other, expected) in cases {
            assert_eq!(diversity(&base, &other), expected, "vs {other}");
        }
    }

    #[test]
    fn equal_local_index_in_other_parent_is_not_similar() {
        // rack 3 in two different datacenters: only continent+country match.
        let a = loc(0, 0, 0, 0, 3, 0);
        let b = loc(0, 0, 1, 0, 3, 0);
        assert_eq!(diversity(&a, &b), 15);
    }

    #[test]
    fn diversity_between_constants() {
        assert_eq!(diversity_between(Level::Continent), 63);
        assert_eq!(diversity_between(Level::Country), 31);
        assert_eq!(diversity_between(Level::Datacenter), 15);
        assert_eq!(diversity_between(Level::Room), 7);
        assert_eq!(diversity_between(Level::Rack), 3);
        assert_eq!(diversity_between(Level::Server), 1);
    }

    #[test]
    fn normalized_diversity_bounds() {
        let a = loc(0, 0, 0, 0, 0, 0);
        let b = loc(1, 0, 0, 0, 0, 0);
        assert_eq!(normalized_diversity(&a, &a), 0.0);
        assert_eq!(normalized_diversity(&a, &b), 1.0);
    }

    fn arb_location() -> impl Strategy<Value = Location> {
        (0u16..4, 0u16..4, 0u16..3, 0u16..2, 0u16..3, 0u16..6)
            .prop_map(|(ct, co, dc, rm, rk, sv)| Location::new(ct, co, dc, rm, rk, sv))
    }

    proptest! {
        #[test]
        fn prop_symmetric(a in arb_location(), b in arb_location()) {
            prop_assert_eq!(diversity(&a, &b), diversity(&b, &a));
        }

        #[test]
        fn prop_zero_iff_equal(a in arb_location(), b in arb_location()) {
            prop_assert_eq!(diversity(&a, &b) == 0, a == b);
        }

        #[test]
        fn prop_in_ladder(a in arb_location(), b in arb_location()) {
            let d = diversity(&a, &b);
            prop_assert!([0u8, 1, 3, 7, 15, 31, 63].contains(&d));
        }

        #[test]
        fn prop_matches_first_divergence(a in arb_location(), b in arb_location()) {
            match a.first_divergence(&b) {
                None => prop_assert_eq!(diversity(&a, &b), 0),
                Some(level) => prop_assert_eq!(diversity(&a, &b), diversity_between(level)),
            }
        }

        #[test]
        fn prop_triangle_like_ultrametric(
            a in arb_location(), b in arb_location(), c in arb_location()
        ) {
            // The hierarchy induces an ultrametric: d(a,c) ≤ max(d(a,b), d(b,c)).
            let ab = diversity(&a, &b);
            let bc = diversity(&b, &c);
            let ac = diversity(&a, &c);
            prop_assert!(ac <= ab.max(bc));
        }
    }
}
