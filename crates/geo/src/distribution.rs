//! Geographic distributions of query clients.
//!
//! Eq. (4) of the paper weights candidate servers by their proximity to "the
//! geographical distribution G of query clients". This module models `G` as a
//! weighted set of client regions (countries). It is deliberately
//! RNG-free — `skute-workload` turns the weights into samples — so that the
//! proximity math in `skute-economy` can consume exact expectations.

use crate::hierarchy::Topology;
use crate::location::Location;

/// A client region and its share of the query traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionWeight {
    /// Representative client location (country granularity, see
    /// [`Location::client_in_country`]).
    pub location: Location,
    /// Non-negative traffic weight; weights need not sum to one.
    pub weight: f64,
}

/// Distribution of query clients over the geographic hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientGeo {
    /// Clients arrive uniformly from every country of the topology. The
    /// paper's simulation uses this and stipulates that the proximity weight
    /// `g_j` is exactly 1 for every server in this case.
    Uniform,
    /// All clients come from a single country.
    SingleCountry {
        /// Continent index of the hot country.
        continent: u16,
        /// Country index within the continent.
        country: u16,
    },
    /// Arbitrary weighted mixture of client regions.
    Weighted(Vec<RegionWeight>),
}

impl ClientGeo {
    /// The client regions and their weights, materialized against a
    /// topology. Weights are normalized to sum to 1.
    ///
    /// Returns an empty vector only for a `Weighted` distribution whose
    /// weights are all zero or empty.
    pub fn region_weights(&self, topology: &Topology) -> Vec<RegionWeight> {
        let raw: Vec<RegionWeight> = match self {
            ClientGeo::Uniform => topology
                .iter_countries()
                .map(|(ct, co)| RegionWeight {
                    location: Location::client_in_country(ct, co),
                    weight: 1.0,
                })
                .collect(),
            ClientGeo::SingleCountry { continent, country } => vec![RegionWeight {
                location: Location::client_in_country(*continent, *country),
                weight: 1.0,
            }],
            ClientGeo::Weighted(regions) => regions.clone(),
        };
        let total: f64 = raw.iter().map(|r| r.weight.max(0.0)).sum();
        if total <= 0.0 {
            return Vec::new();
        }
        raw.into_iter()
            .filter(|r| r.weight > 0.0)
            .map(|r| RegionWeight {
                location: r.location,
                weight: r.weight / total,
            })
            .collect()
    }

    /// True for the exactly-uniform distribution, for which the paper fixes
    /// the proximity weight to 1 (see `skute-economy::scoring`).
    pub fn is_uniform(&self) -> bool {
        matches!(self, ClientGeo::Uniform)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_every_country_normalized() {
        let t = Topology::paper();
        let regions = ClientGeo::Uniform.region_weights(&t);
        assert_eq!(regions.len(), 10);
        let total: f64 = regions.iter().map(|r| r.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for r in &regions {
            assert!((r.weight - 0.1).abs() < 1e-12);
            assert!(r.location.is_client_zone());
        }
    }

    #[test]
    fn single_country_is_a_point_mass() {
        let t = Topology::paper();
        let g = ClientGeo::SingleCountry {
            continent: 2,
            country: 1,
        };
        let regions = g.region_weights(&t);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].weight, 1.0);
        assert_eq!(regions[0].location.continent, 2);
        assert_eq!(regions[0].location.country, 1);
    }

    #[test]
    fn weighted_normalizes_and_drops_nonpositive() {
        let t = Topology::paper();
        let g = ClientGeo::Weighted(vec![
            RegionWeight {
                location: Location::client_in_country(0, 0),
                weight: 3.0,
            },
            RegionWeight {
                location: Location::client_in_country(1, 0),
                weight: 1.0,
            },
            RegionWeight {
                location: Location::client_in_country(2, 0),
                weight: 0.0,
            },
        ]);
        let regions = g.region_weights(&t);
        assert_eq!(regions.len(), 2);
        assert!((regions[0].weight - 0.75).abs() < 1e-12);
        assert!((regions[1].weight - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_weighted_yields_empty() {
        let t = Topology::paper();
        assert!(ClientGeo::Weighted(Vec::new())
            .region_weights(&t)
            .is_empty());
    }

    #[test]
    fn is_uniform_only_for_uniform() {
        assert!(ClientGeo::Uniform.is_uniform());
        assert!(!ClientGeo::SingleCountry {
            continent: 0,
            country: 0
        }
        .is_uniform());
    }
}
