//! End-to-end loopback test: bind a real server on port 0, drive it with
//! `skute-load`, check /metrics coherence, and shut it down gracefully.

use std::thread;
use std::time::Duration;

use skute_server::{post, run_load, scrape, LoadConfig, Op, ServerConfig, SkuteServer};

/// Extracts the summed value of every series of `family` from a
/// Prometheus exposition.
fn metric_sum(exposition: &str, family: &str) -> f64 {
    exposition
        .lines()
        .filter(|l| !l.starts_with('#'))
        .filter(|l| {
            l.starts_with(family)
                && l.as_bytes()
                    .get(family.len())
                    .is_none_or(|&b| b == b'{' || b == b' ')
        })
        .filter_map(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
        .sum()
}

fn metric_series(exposition: &str, family: &str, label: &str) -> f64 {
    exposition
        .lines()
        .filter(|l| l.starts_with(family) && l.contains(label))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
        .sum()
}

#[test]
fn serve_load_scrape_shutdown() {
    let server = SkuteServer::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        partitions: 8,
        warmup_epochs: 3,
        // The test ticks manually so nothing here is timing-dependent.
        epoch_ms: 0,
        ..ServerConfig::default()
    })
    .expect("bind on a free port");
    let addr = server.addr().to_string();
    // tick_now needs the state alive inside run(); keep a handle around
    // by ticking through HTTP-observable effects only.
    let handle = thread::spawn(move || server.run());

    // Wait for the accept loop.
    let mut healthy = false;
    for _ in 0..100 {
        if scrape(&addr, "/healthz").is_ok() {
            healthy = true;
            break;
        }
        thread::sleep(Duration::from_millis(20));
    }
    assert!(healthy, "server never answered /healthz");

    // Closed-loop load: every country weighted equally, mixed ops.
    let report = run_load(LoadConfig {
        addr: addr.clone(),
        clients: 4,
        requests: 600,
        keys: 64,
        value_bytes: 32,
        mix: vec![(Op::Put, 40), (Op::Get, 50), (Op::Delete, 5), (Op::Scan, 5)],
        countries: (0..5)
            .flat_map(|ct| (0..2).map(move |co| ((ct, co), 1.0)))
            .collect(),
        seed: 7,
        scan_limit: 10,
        consistency: Some("quorum".to_string()),
        max_retries: 2,
    })
    .expect("load run completes");

    assert_eq!(report.issued, 600);
    assert_eq!(report.transport_errors, 0, "no reconnects on loopback");
    assert_eq!(
        report.ok + report.not_found + report.http_errors,
        report.issued,
        "every issued request got a response"
    );
    assert!(report.ok > 0, "some requests succeeded");
    assert!(
        report.quantile(0.99).is_some(),
        "latency histogram populated"
    );

    // Round-trip a specific key through raw HTTP to pin the data path.
    {
        use skute_server::http::{read_response, write_request};
        use std::io::BufReader;
        use std::net::TcpStream;
        let stream = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        write_request(
            &mut writer,
            "PUT",
            "/kv/pinned",
            &[("X-Country", "1.1")],
            b"v1",
        )
        .unwrap();
        assert_eq!(read_response(&mut reader).unwrap().status, 204);
        write_request(
            &mut writer,
            "GET",
            "/kv/pinned",
            &[("X-Country", "1.1")],
            b"",
        )
        .unwrap();
        let resp = read_response(&mut reader).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"v1");
        assert!(resp.header("x-served-by").is_some());
        let proximity: f64 = resp.header("x-proximity").unwrap().parse().unwrap();
        assert!(proximity > 0.0);
        // Unknown country is a client error, not a crash.
        write_request(
            &mut writer,
            "GET",
            "/kv/pinned",
            &[("X-Country", "9.9")],
            b"",
        )
        .unwrap();
        assert_eq!(read_response(&mut reader).unwrap().status, 400);
        // Scan sees the pinned key.
        write_request(&mut writer, "GET", "/scan?prefix=pinned&limit=5", &[], b"").unwrap();
        let scan = read_response(&mut reader).unwrap();
        assert_eq!(scan.status, 200);
        assert!(String::from_utf8_lossy(&scan.body).contains("pinned\tv1"));
        // Quorum read: majority of replicas consulted, headers say so.
        write_request(
            &mut writer,
            "GET",
            "/kv/pinned",
            &[("X-Country", "1.1"), ("X-Consistency", "quorum")],
            b"",
        )
        .unwrap();
        let quorum = read_response(&mut reader).unwrap();
        assert_eq!(quorum.status, 200);
        assert_eq!(quorum.body, b"v1");
        assert_eq!(quorum.header("x-consistency"), Some("quorum"));
        let replicas: usize = quorum.header("x-replicas-read").unwrap().parse().unwrap();
        assert!(replicas >= 2, "quorum read consulted a majority");
        // Unknown consistency level is a client error.
        write_request(
            &mut writer,
            "GET",
            "/kv/pinned",
            &[("X-Consistency", "linearizable")],
            b"",
        )
        .unwrap();
        assert_eq!(read_response(&mut reader).unwrap().status, 400);
        // Live fault injection round-trips; bad plans are rejected.
        write_request(&mut writer, "POST", "/fault", &[], b"gray 42").unwrap();
        assert_eq!(read_response(&mut reader).unwrap().status, 200);
        write_request(&mut writer, "POST", "/fault", &[], b"bogus-plan").unwrap();
        assert_eq!(read_response(&mut reader).unwrap().status, 400);
        write_request(&mut writer, "POST", "/fault", &[], b"heal").unwrap();
        assert_eq!(read_response(&mut reader).unwrap().status, 200);
        write_request(&mut writer, "POST", "/fault", &[], b"none").unwrap();
        assert_eq!(read_response(&mut reader).unwrap().status, 200);
    }

    // Coherence: the server counted exactly what the client issued.
    let exposition = scrape(&addr, "/metrics").expect("metrics scrape");
    let kv_requests = metric_series(&exposition, "skute_server_requests_total", "op=\"get\"")
        + metric_series(&exposition, "skute_server_requests_total", "op=\"put\"")
        + metric_series(&exposition, "skute_server_requests_total", "op=\"delete\"")
        + metric_series(&exposition, "skute_server_requests_total", "op=\"scan\"");
    // 600 load requests + 6 pinned kv/scan requests above (the /fault
    // posts count under their own op label).
    assert_eq!(
        kv_requests as u64, 606,
        "request counters match issued load"
    );
    let responses = metric_sum(&exposition, "skute_server_responses_total");
    let requests = metric_sum(&exposition, "skute_server_requests_total");
    assert_eq!(
        responses as u64, requests as u64,
        "every accepted request produced exactly one counted response"
    );
    assert!(
        exposition.contains("skute_epoch_phase_seconds_bucket"),
        "cloud phase histograms are exported"
    );
    assert!(
        exposition.contains("# TYPE skute_queries_total counter"),
        "cloud catalogue is exported"
    );

    // Graceful shutdown: POST /shutdown, run() returns.
    assert_eq!(post(&addr, "/shutdown").unwrap(), 200);
    for _ in 0..200 {
        if handle.is_finished() {
            break;
        }
        thread::sleep(Duration::from_millis(20));
    }
    assert!(handle.is_finished(), "server exited after /shutdown");
    handle.join().unwrap().unwrap();
}

#[test]
fn epoch_tick_feeds_observed_traffic() {
    let server = SkuteServer::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        partitions: 8,
        warmup_epochs: 2,
        epoch_ms: 0,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr().to_string();
    // Serve on a thread but keep the tick under test control.
    let tick = {
        // tick_now borrows &self; run(self) consumes it. Drive ticks
        // before starting the accept loop via the public test hook.
        server.tick_now();
        server.tick_now();
        server
    };
    let handle = thread::spawn(move || tick.run());
    for _ in 0..100 {
        if scrape(&addr, "/healthz").is_ok() {
            break;
        }
        thread::sleep(Duration::from_millis(20));
    }
    let before = scrape(&addr, "/metrics").unwrap();
    assert!(metric_series(&before, "skute_server_epoch_ticks_total", "") >= 2.0);
    assert_eq!(post(&addr, "/shutdown").unwrap(), 200);
    let _ = handle.join().unwrap();
}
