//! `skute-load`: a closed-loop load generator for [`crate::SkuteServer`].
//!
//! `clients` threads share one atomic request budget; each thread holds a
//! keep-alive connection, draws operations from a weighted mix and client
//! countries from a weighted distribution, and records every request's
//! latency into one shared [`Histogram`]. The report carries exact
//! outcome counts (so CI can check them against the server's `/metrics`)
//! plus p50/p99/p999 latency.

use std::io::{self, BufReader};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use skute_obs::{exponential_buckets, Histogram};

use crate::http;

/// One operation kind in the load mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Proximity-routed read.
    Get,
    /// Write with a generated value.
    Put,
    /// Tombstone write.
    Delete,
    /// Prefix scan.
    Scan,
}

impl Op {
    fn method(self) -> &'static str {
        match self {
            Op::Get => "GET",
            Op::Put => "PUT",
            Op::Delete => "DELETE",
            Op::Scan => "GET",
        }
    }
}

/// Configuration for [`run_load`].
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:8080`.
    pub addr: String,
    /// Concurrent client threads.
    pub clients: usize,
    /// Total requests to issue across all clients.
    pub requests: u64,
    /// Key-space size; keys are `key-0 .. key-{keys-1}`.
    pub keys: u64,
    /// Value payload size for puts.
    pub value_bytes: usize,
    /// Weighted operation mix (weights need not sum to anything).
    pub mix: Vec<(Op, u32)>,
    /// Weighted client-country distribution (`(continent, country)` →
    /// weight). Empty means "no `X-Country` header".
    pub countries: Vec<((u16, u16), f64)>,
    /// Seed for the per-thread RNGs.
    pub seed: u64,
    /// `limit` parameter for scans.
    pub scan_limit: usize,
    /// `X-Consistency` header sent on reads (`"one"` or `"quorum"`;
    /// `None` omits the header and takes the server default).
    pub consistency: Option<String>,
    /// Transport-level retries per request before it counts as a
    /// transport error. Retries back off exponentially with jitter so a
    /// reconnect storm against a recovering server spreads out.
    pub max_retries: u32,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8080".to_string(),
            clients: 4,
            requests: 1_000,
            keys: 256,
            value_bytes: 64,
            mix: vec![(Op::Get, 70), (Op::Put, 25), (Op::Delete, 2), (Op::Scan, 3)],
            countries: Vec::new(),
            seed: 1,
            scan_limit: 20,
            consistency: None,
            max_retries: 2,
        }
    }
}

/// Aggregated outcome of one [`run_load`] run.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests actually issued (== the configured budget when the server
    /// stayed reachable).
    pub issued: u64,
    /// 2xx responses.
    pub ok: u64,
    /// 404 responses (expected for reads of never-written keys).
    pub not_found: u64,
    /// Other HTTP status codes.
    pub http_errors: u64,
    /// Connection-level failures that exhausted their retry budget (the
    /// request still counts as issued).
    pub transport_errors: u64,
    /// Transport-level retries (reconnect + re-send after backoff).
    pub retries: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Latency of every completed request, in seconds.
    pub latency: Histogram,
}

impl LoadReport {
    /// Completed requests per second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            (self.ok + self.not_found + self.http_errors) as f64 / secs
        }
    }

    /// Latency quantile in seconds (`None` before any request completed).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.latency.quantile(q)
    }

    /// The two machine-greppable summary lines CI asserts on.
    pub fn summary_lines(&self) -> String {
        let q = |q: f64| self.quantile(q).unwrap_or(0.0) * 1e3;
        // New fields append at the END of the first line: CI's awk
        // indexes the earlier fields positionally.
        format!(
            "load: issued={} ok={} not_found={} http_errors={} transport_errors={} elapsed_ms={} throughput_rps={:.1} retries={}\nload: p50_ms={:.3} p99_ms={:.3} p999_ms={:.3}",
            self.issued,
            self.ok,
            self.not_found,
            self.http_errors,
            self.transport_errors,
            self.elapsed.as_millis(),
            self.throughput(),
            self.retries,
            q(0.50),
            q(0.99),
            q(0.999),
        )
    }
}

/// Weighted pick from a slice; returns the index.
fn pick_weighted<T>(rng: &mut StdRng, items: &[(T, f64)]) -> usize {
    let total: f64 = items.iter().map(|(_, w)| w.max(0.0)).sum();
    if total <= 0.0 {
        return 0;
    }
    let mut roll = rng.gen_range(0.0..total);
    for (i, (_, w)) in items.iter().enumerate() {
        roll -= w.max(0.0);
        if roll < 0.0 {
            return i;
        }
    }
    items.len() - 1
}

struct ThreadTally {
    issued: u64,
    ok: u64,
    not_found: u64,
    http_errors: u64,
    transport_errors: u64,
    retries: u64,
}

/// Runs the closed loop to budget exhaustion.
pub fn run_load(config: LoadConfig) -> io::Result<LoadReport> {
    if config.clients == 0 || config.requests == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "clients and requests must be positive",
        ));
    }
    let budget = Arc::new(AtomicU64::new(config.requests));
    let latency = Histogram::new(&exponential_buckets(1e-4, 2.0, 16));
    let started = Instant::now();
    let mut handles = Vec::with_capacity(config.clients);
    for idx in 0..config.clients {
        let budget = Arc::clone(&budget);
        let latency = latency.clone();
        let config = config.clone();
        handles.push(thread::spawn(move || {
            client_loop(idx as u64, &config, &budget, &latency)
        }));
    }
    let mut report = LoadReport {
        issued: 0,
        ok: 0,
        not_found: 0,
        http_errors: 0,
        transport_errors: 0,
        retries: 0,
        elapsed: Duration::ZERO,
        latency,
    };
    let mut first_err: Option<io::Error> = None;
    for handle in handles {
        match handle.join() {
            Ok(Ok(tally)) => {
                report.issued += tally.issued;
                report.ok += tally.ok;
                report.not_found += tally.not_found;
                report.http_errors += tally.http_errors;
                report.transport_errors += tally.transport_errors;
                report.retries += tally.retries;
            }
            Ok(Err(e)) => first_err = first_err.or(Some(e)),
            Err(_) => {
                first_err = first_err.or_else(|| Some(io::Error::other("load client panicked")));
            }
        }
    }
    report.elapsed = started.elapsed();
    match first_err {
        Some(e) if report.issued == 0 => Err(e),
        _ => Ok(report),
    }
}

/// One client thread: keep-alive connection; transport errors reconnect
/// and retry up to `max_retries` times with exponential backoff plus
/// jitter before the request counts as issued + transport_error.
fn client_loop(
    idx: u64,
    config: &LoadConfig,
    budget: &AtomicU64,
    latency: &Histogram,
) -> io::Result<ThreadTally> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ (0x9e37_79b9 * (idx + 1)));
    let mut tally = ThreadTally {
        issued: 0,
        ok: 0,
        not_found: 0,
        http_errors: 0,
        transport_errors: 0,
        retries: 0,
    };
    let mix: Vec<(Op, f64)> = config.mix.iter().map(|&(op, w)| (op, w as f64)).collect();
    let value: Vec<u8> = (0..config.value_bytes)
        .map(|i| b'a' + (i % 26) as u8)
        .collect();
    let mut conn: Option<(BufReader<TcpStream>, TcpStream)> = None;
    let mut consecutive_failures = 0u32;
    loop {
        // Claim one request from the shared budget.
        let claimed = budget
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok();
        if !claimed {
            return Ok(tally);
        }
        tally.issued += 1;
        let op = mix[pick_weighted(&mut rng, &mix)].0;
        let key = format!("key-{}", rng.gen_range(0..config.keys));
        let target = match op {
            Op::Scan => format!("/scan?prefix=key-&limit={}", config.scan_limit),
            _ => format!("/kv/{key}"),
        };
        let country = if config.countries.is_empty() {
            None
        } else {
            let (ct, co) = config.countries[pick_weighted(&mut rng, &config.countries)].0;
            Some(format!("{ct}.{co}"))
        };
        let body: &[u8] = if op == Op::Put { &value } else { &[] };
        let consistency = match op {
            Op::Get => config.consistency.as_deref(),
            _ => None,
        };

        let t0 = Instant::now();
        let mut attempt = 0u32;
        let outcome = loop {
            let result = issue(
                &mut conn,
                &config.addr,
                op.method(),
                &target,
                country.as_deref(),
                consistency,
                body,
            );
            match result {
                Ok(status) => break Ok(status),
                Err(e) => {
                    conn = None;
                    if attempt >= config.max_retries {
                        break Err(e);
                    }
                    attempt += 1;
                    tally.retries += 1;
                    // Exponential backoff (5ms · 2^attempt, capped) with
                    // full jitter so retrying clients desynchronize.
                    let base_ms = 5u64 << attempt.min(6);
                    thread::sleep(Duration::from_millis(rng.gen_range(1..=base_ms)));
                }
            }
        };
        match outcome {
            Ok(status) => {
                consecutive_failures = 0;
                latency.observe_duration(t0.elapsed());
                match status {
                    200..=299 => tally.ok += 1,
                    404 => tally.not_found += 1,
                    _ => tally.http_errors += 1,
                }
            }
            Err(e) => {
                tally.transport_errors += 1;
                consecutive_failures += 1;
                if consecutive_failures >= 10 {
                    return Err(e);
                }
            }
        }
    }
}

/// Issues one request over the cached connection, dialing if needed.
fn issue(
    conn: &mut Option<(BufReader<TcpStream>, TcpStream)>,
    addr: &str,
    method: &str,
    target: &str,
    country: Option<&str>,
    consistency: Option<&str>,
    body: &[u8],
) -> io::Result<u16> {
    if conn.is_none() {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
        let reader = BufReader::new(stream.try_clone()?);
        *conn = Some((reader, stream));
    }
    let (reader, writer) = conn.as_mut().expect("connection just dialed");
    let mut headers: Vec<(&str, &str)> = Vec::new();
    if let Some(c) = country {
        headers.push(("X-Country", c));
    }
    if let Some(c) = consistency {
        headers.push(("X-Consistency", c));
    }
    http::write_request(writer, method, target, &headers, body)?;
    let response = http::read_response(reader)?;
    Ok(response.status)
}

/// One-shot GET (CI uses this to scrape `/metrics` without curl).
pub fn scrape(addr: &str, path: &str) -> io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    http::write_request(&mut writer, "GET", path, &[("Connection", "close")], b"")?;
    let response = http::read_response(&mut reader)?;
    if response.status != 200 {
        return Err(io::Error::other(format!(
            "GET {path} returned {}",
            response.status
        )));
    }
    String::from_utf8(response.body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response body"))
}

/// One-shot POST (CI uses this for the graceful `/shutdown`).
pub fn post(addr: &str, path: &str) -> io::Result<u16> {
    post_body(addr, path, b"")
}

/// One-shot POST with a body (CI uses this to inject fault plans over
/// `/fault` mid-run).
pub fn post_body(addr: &str, path: &str, body: &[u8]) -> io::Result<u16> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    http::write_request(&mut writer, "POST", path, &[("Connection", "close")], body)?;
    let response = http::read_response(&mut reader)?;
    Ok(response.status)
}
