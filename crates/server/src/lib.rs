//! # skute-server
//!
//! An HTTP front end that serves real client traffic from a live
//! [`skute_core::SkuteCloud`], plus the `skute-load` closed-loop
//! generator that drives it. Both sides are std-only (`TcpListener` and
//! a minimal hand-rolled HTTP/1.1 subset in [`http`]) because the build
//! environment is offline.
//!
//! ## Protocol
//!
//! | Route | Meaning |
//! |---|---|
//! | `GET /healthz` | liveness probe, `200 ok` |
//! | `GET /metrics` | Prometheus text exposition of the shared registry |
//! | `GET /kv/<key>` | proximity-routed read ([`SkuteCloud::client_get`]); `X-Served-By` / `X-Proximity` / `X-Replicas-Read` response headers; 404 for absent keys |
//! | `PUT /kv/<key>` | write, body is the value, `204` |
//! | `DELETE /kv/<key>` | tombstone write, `204` |
//! | `GET /scan?prefix=&limit=` | ordered prefix scan, one `key\tvalue` line each (percent-encoded) |
//! | `POST /fault` | swap the live fault plan (`gray 42`, `partition 7`, `cut 2`, `heal`, `none`) without a restart |
//! | `POST /shutdown` | graceful stop: respond, then drain and exit |
//!
//! Reads accept an `X-Consistency: one|quorum` request header selecting
//! the read path: `one` answers from the closest reachable replica,
//! `quorum` reads ⌈(n+1)/2⌉ replicas, merges last-writer-wins, and
//! schedules read-repair for stale copies. When gray failures or a
//! partition leave fewer reachable replicas than the quorum needs, the
//! server degrades gracefully — it still answers from what it can reach
//! and flags the response with `X-Degraded: true`.
//!
//! Clients declare their origin with an `X-Country: <continent>.<country>`
//! header; the server tallies per-country query-units and replays them
//! into the economy as a [`skute_core::TrafficBatch`] on every epoch tick,
//! so replica placement follows the *observed* geographic demand — the
//! serving-path analogue of the paper's simulated traffic (eq. 4 picks
//! the closest replica on reads).
//!
//! Epoch ticks run on a timer thread (`epoch_ms`); metrics are write-only
//! observers of the same [`skute_core::CloudMetrics`] catalogue the
//! simulator uses, so a serving cloud and a simulated cloud expose the
//! same trajectory instrumentation.
//!
//! [`SkuteCloud::client_get`]: skute_core::SkuteCloud::client_get

#![warn(missing_docs)]

pub mod http;
pub mod load;
mod server;

pub use load::{post, post_body, run_load, scrape, LoadConfig, LoadReport, Op};
pub use server::{ServerConfig, SkuteServer};
