//! The HTTP front end: a [`SkuteCloud`] behind a thread-per-connection
//! TCP listener, with an epoch tick thread that feeds observed per-country
//! traffic back into the economy and a `/metrics` endpoint exposing the
//! full [`skute_core::CloudMetrics`] catalogue plus server-side request
//! metrics.

use std::collections::BTreeMap;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use skute_cluster::{Capacities, Cluster, ServerSpec};
use skute_core::{
    AppId, AppSpec, FaultPlan, FaultPlanKind, LevelSpec, ReadConsistency, SkuteCloud, SkuteConfig,
    TrafficBatch,
};
use skute_geo::{Location, RegionWeight, Topology};
use skute_obs::{exponential_buckets, Counter, Gauge, Histogram, Registry};
use skute_store::BackendKind;

use crate::http::{self, Request};

/// Configuration for [`SkuteServer::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Replicas per partition of the served ring (the SLA's `n`).
    pub replicas: usize,
    /// Partitions of the served ring.
    pub partitions: usize,
    /// Seed for the cloud's decision process.
    pub seed: u64,
    /// Worker threads for the epoch pipeline (1 = sequential).
    pub threads: usize,
    /// Storage backend for the replicas.
    pub backend: BackendKind,
    /// Wall-clock milliseconds per epoch tick (0 disables the tick
    /// thread; epochs then only advance via [`SkuteServer::tick_now`]).
    pub epoch_ms: u64,
    /// Epochs of uniform warmup traffic driven before serving, so the
    /// rings reach their SLA replica counts.
    pub warmup_epochs: u64,
    /// Per-server storage capacity in bytes.
    pub server_storage_bytes: u64,
    /// Per-server query capacity per epoch.
    pub server_query_capacity: f64,
    /// Query-units each HTTP request contributes to the epoch's offered
    /// load (scales request counts to the economy's units).
    pub queries_per_request: f64,
    /// Per-connection socket read timeout in milliseconds (0 = none).
    /// Bounds how long a stalled client can pin a connection thread.
    pub read_timeout_ms: u64,
    /// Per-connection socket write timeout in milliseconds (0 = none).
    pub write_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            replicas: 3,
            partitions: 32,
            seed: 42,
            threads: 1,
            backend: BackendKind::Mem,
            epoch_ms: 1_000,
            warmup_epochs: 8,
            server_storage_bytes: 4 << 30,
            server_query_capacity: 3_000.0,
            queries_per_request: 1.0,
            read_timeout_ms: 30_000,
            write_timeout_ms: 30_000,
        }
    }
}

/// Server-side request metrics, registered alongside the cloud's.
struct ServerMetrics {
    requests: BTreeMap<&'static str, Counter>,
    responses: BTreeMap<&'static str, Counter>,
    latency: BTreeMap<&'static str, Histogram>,
    active_connections: Gauge,
    epoch_pending_queries: Gauge,
    epoch_ticks: Counter,
}

const OPS: &[&str] = &[
    "get", "put", "delete", "scan", "metrics", "health", "fault", "shutdown", "other",
];
const OUTCOMES: &[&str] = &["ok", "not_found", "client_error", "server_error"];

impl ServerMetrics {
    fn register(registry: &Registry) -> Self {
        let mut requests = BTreeMap::new();
        let mut responses = BTreeMap::new();
        let mut latency = BTreeMap::new();
        for &op in OPS {
            requests.insert(
                op,
                registry.counter_with(
                    "skute_server_requests_total",
                    "HTTP requests accepted, by operation.",
                    &[("op", op)],
                ),
            );
            latency.insert(
                op,
                registry.histogram_with(
                    "skute_server_request_seconds",
                    "Request handling latency, by operation.",
                    &[("op", op)],
                    &exponential_buckets(1e-5, 4.0, 10),
                ),
            );
        }
        for &outcome in OUTCOMES {
            responses.insert(
                outcome,
                registry.counter_with(
                    "skute_server_responses_total",
                    "HTTP responses written, by outcome class.",
                    &[("outcome", outcome)],
                ),
            );
        }
        Self {
            requests,
            responses,
            latency,
            active_connections: registry.gauge(
                "skute_server_active_connections",
                "Currently open client connections.",
            ),
            epoch_pending_queries: registry.gauge(
                "skute_server_epoch_pending_queries",
                "Query-units accumulated since the last epoch tick (request queue depth in economy units).",
            ),
            epoch_ticks: registry.counter(
                "skute_server_epoch_ticks_total",
                "Epoch ticks driven by the server.",
            ),
        }
    }

    fn outcome_for(&self, status: u16) -> &Counter {
        let class = match status {
            200..=299 => "ok",
            404 => "not_found",
            400..=499 => "client_error",
            _ => "server_error",
        };
        &self.responses[class]
    }
}

/// The cloud plus the per-epoch traffic tally, guarded by one mutex so
/// client operations and epoch ticks serialize.
struct CloudSlot {
    cloud: SkuteCloud,
    app: AppId,
    /// Query-units observed this epoch, per client country.
    tally: BTreeMap<(u16, u16), f64>,
}

/// Shared state behind the listener.
struct ServerState {
    slot: Mutex<CloudSlot>,
    topology: Topology,
    registry: Arc<Registry>,
    metrics: ServerMetrics,
    config: ServerConfig,
    shutdown: AtomicBool,
}

/// A bound, warmed-up Skute HTTP server. See the crate docs for the
/// protocol.
pub struct SkuteServer {
    listener: TcpListener,
    addr: SocketAddr,
    state: Arc<ServerState>,
}

impl SkuteServer {
    /// Builds the cloud (paper topology, 200 servers, 70/30 cost split),
    /// registers one `kv` application, drives `warmup_epochs` of uniform
    /// traffic so the ring reaches its SLA, and binds the listener.
    pub fn bind(config: ServerConfig) -> io::Result<SkuteServer> {
        let topology = Topology::paper();
        let cluster = Cluster::from_topology(&topology, |i, location| ServerSpec {
            location,
            capacities: Capacities::paper(
                config.server_storage_bytes,
                config.server_query_capacity,
            ),
            monthly_cost: if i % 10 < 7 { 100.0 } else { 125.0 },
            confidence: 1.0,
        });
        let cloud_config = SkuteConfig::paper()
            .with_seed(config.seed)
            .with_threads(config.threads)
            .with_backend(config.backend);
        let mut cloud = SkuteCloud::new(cloud_config, topology.clone(), cluster);
        let app = cloud
            .create_application(
                AppSpec::new("kv").level(LevelSpec::new(config.replicas, config.partitions)),
            )
            .map_err(|e| io::Error::other(format!("application setup failed: {e:?}")))?;

        let registry = Arc::new(Registry::new());
        let cloud_metrics = skute_core::CloudMetrics::register(&registry);
        cloud.set_metrics(cloud_metrics);
        let metrics = ServerMetrics::register(&registry);

        // Warmup: uniform traffic across every country at roughly the
        // capacity the generator will offer, so replica counts settle
        // before the first client request arrives.
        let uniform: Vec<RegionWeight> = topology
            .iter_countries()
            .map(|(ct, co)| RegionWeight {
                location: Location::client_in_country(ct, co),
                weight: 1.0,
            })
            .collect();
        cloud.begin_epoch();
        for _ in 0..config.warmup_epochs {
            cloud
                .deliver_queries_multi(vec![TrafficBatch {
                    app,
                    level: 0,
                    queries: 50_000.0,
                    regions: uniform.clone(),
                }])
                .map_err(|e| io::Error::other(format!("warmup traffic failed: {e:?}")))?;
            cloud.end_epoch();
            cloud.begin_epoch();
        }

        let listener = TcpListener::bind(&config.addr as &str)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        Ok(SkuteServer {
            listener,
            addr,
            state: Arc::new(ServerState {
                slot: Mutex::new(CloudSlot {
                    cloud,
                    app,
                    tally: BTreeMap::new(),
                }),
                topology,
                registry,
                metrics,
                config,
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Advances one epoch immediately (test hook; the tick thread does
    /// the same on its timer).
    pub fn tick_now(&self) {
        tick(&self.state);
    }

    /// Serves until a `POST /shutdown` arrives. Spawns the epoch tick
    /// thread (when `epoch_ms > 0`) and one thread per connection.
    pub fn run(self) -> io::Result<()> {
        let state = Arc::clone(&self.state);
        let ticker = if state.config.epoch_ms > 0 {
            let tick_state = Arc::clone(&state);
            Some(thread::spawn(move || {
                let period = Duration::from_millis(tick_state.config.epoch_ms);
                while !tick_state.shutdown.load(Ordering::SeqCst) {
                    sleep_then_tick(&tick_state, period);
                }
            }))
        } else {
            None
        };
        let mut workers = Vec::new();
        while !state.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let conn_state = Arc::clone(&state);
                    workers.push(thread::spawn(move || handle_connection(conn_state, stream)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
            // Reap finished connection threads so the vec stays bounded.
            workers.retain(|h| !h.is_finished());
        }
        for h in workers {
            let _ = h.join();
        }
        if let Some(t) = ticker {
            let _ = t.join();
        }
        Ok(())
    }
}

/// Tick pacing: sleeps in short slices so shutdown stays responsive,
/// then runs one epoch tick.
fn sleep_then_tick(state: &Arc<ServerState>, period: Duration) {
    let start = Instant::now();
    while start.elapsed() < period {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        thread::sleep(Duration::from_millis(
            25.min(period.as_millis() as u64).max(1),
        ));
    }
    tick(state);
}

/// One epoch tick: converts the tally into a [`TrafficBatch`], runs the
/// decision process, opens the next epoch, and clears the tally.
fn tick(state: &Arc<ServerState>) {
    let mut slot = state.slot.lock().expect("cloud lock");
    let total: f64 = slot.tally.values().sum();
    if total > 0.0 {
        let regions: Vec<RegionWeight> = slot
            .tally
            .iter()
            .map(|(&(ct, co), &weight)| RegionWeight {
                location: Location::client_in_country(ct, co),
                weight,
            })
            .collect();
        let app = slot.app;
        slot.cloud
            .deliver_queries_multi(vec![TrafficBatch {
                app,
                level: 0,
                queries: total,
                regions,
            }])
            .expect("registered app");
    }
    slot.cloud.end_epoch();
    slot.cloud.begin_epoch();
    slot.tally.clear();
    state.metrics.epoch_ticks.inc();
    state.metrics.epoch_pending_queries.set(0);
}

fn handle_connection(state: Arc<ServerState>, stream: TcpStream) {
    state.metrics.active_connections.add(1);
    let _ = stream.set_nodelay(true);
    // Connections came off a nonblocking listener; reads must block.
    let _ = stream.set_nonblocking(false);
    let timeout = |ms: u64| (ms > 0).then(|| Duration::from_millis(ms));
    let _ = stream.set_read_timeout(timeout(state.config.read_timeout_ms));
    let _ = stream.set_write_timeout(timeout(state.config.write_timeout_ms));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            state.metrics.active_connections.sub(1);
            return;
        }
    });
    let mut writer = stream;
    loop {
        let request = match http::read_request(&mut reader) {
            Ok(Some(r)) => r,
            Ok(None) => break,
            Err(_) => {
                let _ = http::write_response(
                    &mut writer,
                    400,
                    "text/plain",
                    b"bad request\n",
                    &[],
                    false,
                );
                state.metrics.responses["client_error"].inc();
                break;
            }
        };
        let keep_alive = !request.wants_close();
        let close_after = handle_request(&state, &request, &mut writer, keep_alive);
        if close_after || !keep_alive || state.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
    state.metrics.active_connections.sub(1);
}

/// Routes one request; returns true when the connection must close
/// (shutdown acknowledged).
fn handle_request<W: Write>(
    state: &Arc<ServerState>,
    request: &Request,
    writer: &mut W,
    keep_alive: bool,
) -> bool {
    let started = Instant::now();
    let path = request.path();
    let op = match (request.method.as_str(), path.as_str()) {
        ("GET", "/metrics") => "metrics",
        ("GET", "/healthz") => "health",
        ("POST", "/fault") => "fault",
        ("POST", "/shutdown") => "shutdown",
        ("GET", "/scan") => "scan",
        ("GET", p) if p.starts_with("/kv/") => "get",
        ("PUT", p) if p.starts_with("/kv/") => "put",
        ("DELETE", p) if p.starts_with("/kv/") => "delete",
        _ => "other",
    };
    state.metrics.requests[op].inc();
    let mut shutdown_now = false;
    let (status, content_type, body, extra): (u16, &str, Vec<u8>, Vec<(String, String)>) = match op
    {
        "health" => (200, "text/plain", b"ok\n".to_vec(), vec![]),
        "metrics" => {
            {
                let slot = state.slot.lock().expect("cloud lock");
                slot.cloud.refresh_storage_metrics();
            }
            // Count this response *before* rendering so the scrape's
            // own request/response pair balances in its own output.
            state.metrics.outcome_for(200).inc();
            (
                200,
                "text/plain; version=0.0.4",
                state.registry.render().into_bytes(),
                vec![],
            )
        }
        "shutdown" => {
            shutdown_now = true;
            (200, "text/plain", b"shutting down\n".to_vec(), vec![])
        }
        "get" | "put" | "delete" => handle_kv(state, request, op, &path),
        "scan" => handle_scan(state, request),
        "fault" => handle_fault(state, request),
        _ => (404, "text/plain", b"not found\n".to_vec(), vec![]),
    };
    let extra_refs: Vec<(&str, &str)> = extra
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    let _ = http::write_response(
        writer,
        status,
        content_type,
        &body,
        &extra_refs,
        keep_alive && !shutdown_now,
    );
    if op != "metrics" {
        state.metrics.outcome_for(status).inc();
    }
    state.metrics.latency[op].observe_duration(started.elapsed());
    if shutdown_now {
        state.shutdown.store(true, Ordering::SeqCst);
    }
    shutdown_now
}

/// Parses `X-Country: <continent>.<country>` into a client location,
/// validated against the topology. `Ok(None)` means no header.
fn client_location(state: &ServerState, request: &Request) -> Result<Option<Location>, String> {
    let Some(raw) = request.header("x-country") else {
        return Ok(None);
    };
    let parsed = raw.split_once('.').and_then(|(ct, co)| {
        Some((
            ct.trim().parse::<u16>().ok()?,
            co.trim().parse::<u16>().ok()?,
        ))
    });
    let Some((ct, co)) = parsed else {
        return Err(format!("malformed X-Country {raw:?} (want ct.co)"));
    };
    if !state.topology.iter_countries().any(|c| c == (ct, co)) {
        return Err(format!("unknown country {ct}.{co}"));
    }
    Ok(Some(Location::client_in_country(ct, co)))
}

/// Charges one request's query-units to the epoch tally.
fn charge(state: &ServerState, slot: &mut CloudSlot, client: Option<Location>) {
    let key = client
        .map(|l| (l.continent, l.country))
        .unwrap_or((u16::MAX, u16::MAX));
    // Requests with no declared country still count as offered load;
    // bucket them under the first country so weights stay normalizable.
    let key = if key.0 == u16::MAX {
        state.topology.iter_countries().next().unwrap_or((0, 0))
    } else {
        key
    };
    *slot.tally.entry(key).or_insert(0.0) += state.config.queries_per_request;
    state
        .metrics
        .epoch_pending_queries
        .add(state.config.queries_per_request.round() as i64);
}

fn handle_kv(
    state: &Arc<ServerState>,
    request: &Request,
    op: &str,
    path: &str,
) -> (u16, &'static str, Vec<u8>, Vec<(String, String)>) {
    let key = path.as_bytes()["/kv/".len()..].to_vec();
    if key.is_empty() {
        return (400, "text/plain", b"empty key\n".to_vec(), vec![]);
    }
    let client = match client_location(state, request) {
        Ok(c) => c,
        Err(msg) => return (400, "text/plain", format!("{msg}\n").into_bytes(), vec![]),
    };
    let mut slot = state.slot.lock().expect("cloud lock");
    charge(state, &mut slot, client);
    let app = slot.app;
    match op {
        "put" => match slot.cloud.put(app, 0, &key, request.body.clone()) {
            Ok(()) => (204, "text/plain", Vec::new(), vec![]),
            Err(e) => (
                500,
                "text/plain",
                format!("put failed: {e:?}\n").into_bytes(),
                vec![],
            ),
        },
        "delete" => match slot.cloud.delete(app, 0, &key) {
            Ok(()) => (204, "text/plain", Vec::new(), vec![]),
            Err(e) => (
                500,
                "text/plain",
                format!("delete failed: {e:?}\n").into_bytes(),
                vec![],
            ),
        },
        _ => {
            let consistency = match request.header("x-consistency") {
                Some(raw) => match raw.trim().parse::<ReadConsistency>() {
                    Ok(c) => c,
                    Err(msg) => {
                        return (400, "text/plain", format!("{msg}\n").into_bytes(), vec![])
                    }
                },
                None => ReadConsistency::One,
            };
            match slot
                .cloud
                .client_get_with(app, 0, &key, client, consistency)
            {
                Ok(read) => {
                    let mut extra = vec![
                        ("X-Served-By".to_string(), read.served_by.to_string()),
                        ("X-Proximity".to_string(), format!("{:.6}", read.proximity)),
                        ("X-Consistency".to_string(), consistency.to_string()),
                        (
                            "X-Replicas-Read".to_string(),
                            read.replicas_read.to_string(),
                        ),
                    ];
                    // Degraded reads still answer (graceful degradation);
                    // the header lets clients detect the weakened quorum.
                    if read.degraded {
                        extra.push(("X-Degraded".to_string(), "true".to_string()));
                    }
                    match read.value {
                        Some(value) => (200, "application/octet-stream", value.to_vec(), extra),
                        None => (404, "text/plain", b"not found\n".to_vec(), extra),
                    }
                }
                Err(e) => (
                    500,
                    "text/plain",
                    format!("get failed: {e:?}\n").into_bytes(),
                    vec![],
                ),
            }
        }
    }
}

/// `POST /fault`: swaps the live cloud onto a new fault plan without a
/// restart. The body is one line:
///
/// * `<plan> [seed]` — a [`FaultPlanKind`] name (`none`, `gray`,
///   `partition`, `all`, ...); the seed defaults to the server seed.
/// * `cut <continent>` — force a continental partition immediately.
/// * `heal` — heal any continental cut (forced or plan-derived).
///
/// Plan swaps take effect at the next epoch tick (gray state refreshes
/// in `begin_epoch`); `cut`/`heal` also wait for the next tick. CI's
/// server-smoke uses this to inject gray failures mid-run and assert
/// that acked writes survive.
fn handle_fault(
    state: &Arc<ServerState>,
    request: &Request,
) -> (u16, &'static str, Vec<u8>, Vec<(String, String)>) {
    let body = String::from_utf8_lossy(&request.body);
    let mut words = body.split_whitespace();
    let verb = words.next().unwrap_or_default();
    let mut slot = state.slot.lock().expect("cloud lock");
    let reply = match verb {
        "" => {
            return (
                400,
                "text/plain",
                b"empty fault command (want '<plan> [seed]', 'cut <continent>' or 'heal')\n"
                    .to_vec(),
                vec![],
            )
        }
        "heal" => {
            slot.cloud.force_continent_partition(None);
            "fault: partition healed\n".to_string()
        }
        "cut" => {
            let continent = match words.next().map(str::parse::<u16>) {
                Some(Ok(c)) => c,
                _ => {
                    return (
                        400,
                        "text/plain",
                        b"cut wants a continent index\n".to_vec(),
                        vec![],
                    )
                }
            };
            slot.cloud.force_continent_partition(Some(continent));
            format!("fault: continent {continent} cut\n")
        }
        plan => {
            let kind = match plan.parse::<FaultPlanKind>() {
                Ok(k) => k,
                Err(msg) => return (400, "text/plain", format!("{msg}\n").into_bytes(), vec![]),
            };
            let seed = match words.next().map(str::parse::<u64>) {
                Some(Ok(s)) => s,
                Some(Err(e)) => {
                    return (
                        400,
                        "text/plain",
                        format!("bad fault seed: {e}\n").into_bytes(),
                        vec![],
                    )
                }
                None => state.config.seed,
            };
            slot.cloud.set_fault_plan(FaultPlan { kind, seed });
            format!("fault: plan {} seed {seed}\n", kind.as_str())
        }
    };
    (200, "text/plain", reply.into_bytes(), vec![])
}

fn handle_scan(
    state: &Arc<ServerState>,
    request: &Request,
) -> (u16, &'static str, Vec<u8>, Vec<(String, String)>) {
    let prefix = request.query_param("prefix").unwrap_or_default();
    let limit = match request.query_param("limit") {
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                return (400, "text/plain", b"bad limit\n".to_vec(), vec![]);
            }
        },
        None => 100,
    };
    let client = match client_location(state, request) {
        Ok(c) => c,
        Err(msg) => return (400, "text/plain", format!("{msg}\n").into_bytes(), vec![]),
    };
    let mut slot = state.slot.lock().expect("cloud lock");
    charge(state, &mut slot, client);
    let app = slot.app;
    match slot.cloud.scan(app, 0, prefix.as_bytes(), limit) {
        Ok(pairs) => {
            let mut body = Vec::new();
            for (key, value) in &pairs {
                body.extend_from_slice(http::percent_encode(key).as_bytes());
                body.push(b'\t');
                body.extend_from_slice(http::percent_encode(value).as_bytes());
                body.push(b'\n');
            }
            let extra = vec![("X-Scan-Count".to_string(), pairs.len().to_string())];
            (200, "text/plain", body, extra)
        }
        Err(e) => (
            500,
            "text/plain",
            format!("scan failed: {e:?}\n").into_bytes(),
            vec![],
        ),
    }
}
