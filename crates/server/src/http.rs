//! A minimal, std-only HTTP/1.1 subset: enough for `skute-server` to
//! speak to curl, Prometheus scrapers, and `skute-load` — request/response
//! framing with `Content-Length` bodies and keep-alive, nothing more (no
//! chunked encoding, no TLS, no HTTP/2). The build environment is
//! offline, so this replaces a network stack dependency on purpose.

use std::io::{self, BufRead, BufReader, Read, Write};

/// Upper bound on a request line or header line (guards against a peer
/// streaming garbage into memory).
const MAX_LINE: usize = 8 * 1024;
/// Upper bound on header count per message.
const MAX_HEADERS: usize = 64;
/// Upper bound on a request/response body.
const MAX_BODY: usize = 16 << 20;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `PUT`, ...).
    pub method: String,
    /// The raw request target (path + optional `?query`), undecoded.
    pub target: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The path portion of the target (before any `?`), percent-decoded.
    pub fn path(&self) -> String {
        let raw = self.target.split('?').next().unwrap_or("");
        percent_decode(raw)
    }

    /// The first query parameter named `name`, percent-decoded.
    pub fn query_param(&self, name: &str) -> Option<String> {
        let query = self.target.split_once('?')?.1;
        for pair in query.split('&') {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            if percent_decode(k) == name {
                return Some(percent_decode(v));
            }
        }
        None
    }

    /// The first header named `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// True when the client asked to close the connection.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// A parsed HTTP response (the client side of `skute-load`).
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl Response {
    /// The first header named `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one request off the wire. `Ok(None)` is a clean EOF between
/// requests (the peer closed a keep-alive connection); a malformed
/// message is an `InvalidData` error.
pub fn read_request<R: Read>(reader: &mut BufReader<R>) -> io::Result<Option<Request>> {
    let Some(line) = read_line(reader, true)? else {
        return Ok(None);
    };
    let mut parts = line.split_ascii_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(bad("malformed request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad("unsupported HTTP version"));
    }
    let headers = read_headers(reader)?;
    let body = read_body(reader, &headers)?;
    Ok(Some(Request {
        method: method.to_ascii_uppercase(),
        target: target.to_string(),
        headers,
        body,
    }))
}

/// Reads one response off the wire (must follow a written request).
pub fn read_response<R: Read>(reader: &mut BufReader<R>) -> io::Result<Response> {
    let Some(line) = read_line(reader, true)? else {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before the status line",
        ));
    };
    let mut parts = line.split_ascii_whitespace();
    let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
        return Err(bad("malformed status line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad("unsupported HTTP version"));
    }
    let status: u16 = code.parse().map_err(|_| bad("malformed status code"))?;
    let headers = read_headers(reader)?;
    let body = read_body(reader, &headers)?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

/// Writes one response. `extra_headers` land verbatim after the standard
/// set; the connection header reflects `keep_alive`.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, &str)],
    keep_alive: bool,
) -> io::Result<()> {
    let reason = reason_phrase(status);
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Writes one request (client side).
pub fn write_request<W: Write>(
    w: &mut W,
    method: &str,
    target: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "{method} {target} HTTP/1.1\r\nHost: skute\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (k, v) in headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Percent-decodes a URL component (`%41` → `A`, `+` left alone — keys may
/// legitimately contain it). Malformed escapes pass through verbatim.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() + 1 && i + 2 < bytes.len() + 1 {
            let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                let h = std::str::from_utf8(h).ok()?;
                u8::from_str_radix(h, 16).ok()
            });
            if let Some(b) = hex {
                out.push(b);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encodes a URL path component (everything but unreserved chars).
pub fn percent_encode(s: &[u8]) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' | b'/' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Reads one CRLF (or LF) terminated line. `allow_eof` turns EOF at a
/// line start into `Ok(None)`.
fn read_line<R: Read>(reader: &mut BufReader<R>, allow_eof: bool) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            if line.is_empty() && allow_eof {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-line",
            ));
        }
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            line.extend_from_slice(&buf[..pos]);
            reader.consume(pos + 1);
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            if line.len() > MAX_LINE {
                return Err(bad("line too long"));
            }
            return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
        }
        let len = buf.len();
        line.extend_from_slice(buf);
        reader.consume(len);
        if line.len() > MAX_LINE {
            return Err(bad("line too long"));
        }
    }
}

fn read_headers<R: Read>(reader: &mut BufReader<R>) -> io::Result<Vec<(String, String)>> {
    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line(reader, false)? else {
            return Err(bad("truncated headers"));
        };
        if line.is_empty() {
            return Ok(headers);
        }
        if headers.len() >= MAX_HEADERS {
            return Err(bad("too many headers"));
        }
        let Some((k, v)) = line.split_once(':') else {
            return Err(bad("malformed header"));
        };
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }
}

fn read_body<R: Read>(
    reader: &mut BufReader<R>,
    headers: &[(String, String)],
) -> io::Result<Vec<u8>> {
    let len = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>().map_err(|_| bad("bad content-length")))
        .transpose()?
        .unwrap_or(0);
    if len > MAX_BODY {
        return Err(bad("body too large"));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reader(bytes: &[u8]) -> BufReader<&[u8]> {
        BufReader::new(bytes)
    }

    #[test]
    fn parses_request_with_body_and_query() {
        let raw = b"PUT /kv/user%3A1?ttl=5 HTTP/1.1\r\nHost: x\r\nX-Country: 2.1\r\nContent-Length: 5\r\n\r\nhello";
        let req = read_request(&mut reader(raw)).unwrap().unwrap();
        assert_eq!(req.method, "PUT");
        assert_eq!(req.path(), "/kv/user:1");
        assert_eq!(req.query_param("ttl").as_deref(), Some("5"));
        assert_eq!(req.header("x-country"), Some("2.1"));
        assert_eq!(req.body, b"hello");
        // Clean EOF after the only request.
        assert!(read_request(&mut reader(b"")).unwrap().is_none());
    }

    #[test]
    fn response_round_trips() {
        let mut wire = Vec::new();
        write_response(
            &mut wire,
            200,
            "text/plain",
            b"ok\n",
            &[("X-Extra", "1")],
            true,
        )
        .unwrap();
        let resp = read_response(&mut reader(&wire)).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-extra"), Some("1"));
        assert_eq!(resp.header("connection"), Some("keep-alive"));
        assert_eq!(resp.body, b"ok\n");
    }

    #[test]
    fn request_round_trips() {
        let mut wire = Vec::new();
        write_request(&mut wire, "GET", "/metrics", &[], b"").unwrap();
        let req = read_request(&mut reader(&wire)).unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn percent_coding_round_trips() {
        let key: &[u8] = b"user:1/\xFF space";
        let encoded = percent_encode(key);
        assert!(!encoded.contains(' '));
        assert_eq!(percent_decode(&encoded).as_bytes()[..7], key[..7]);
        // Malformed escapes pass through instead of erroring.
        assert_eq!(percent_decode("a%ZZb%"), "a%ZZb%");
    }

    #[test]
    fn malformed_requests_error() {
        assert!(read_request(&mut reader(b"garbage\r\n\r\n")).is_err());
        assert!(read_request(&mut reader(b"GET / HTTP/2\r\n\r\n")).is_err());
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_LINE + 1));
        assert!(read_request(&mut reader(huge.as_bytes())).is_err());
    }
}
