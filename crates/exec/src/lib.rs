//! Deterministic scoped fan-out for the epoch pipeline.
//!
//! The offline build environment has no rayon; this crate provides the
//! small slice of it Skute needs, designed around one invariant: **results
//! never depend on the thread count or on worker scheduling**.
//!
//! Three pieces:
//!
//! - [`WorkerPool`]: a scoped fork-join pool. Work is pre-split into
//!   chunks whose boundaries the *caller* fixes; workers steal whole
//!   chunks, so scheduling decides only *who* runs a chunk, never what the
//!   chunk computes. With one thread (or one chunk) everything runs inline
//!   on the caller's stack — zero spawns, zero synchronization.
//! - [`ShardAccounts`]: per-chunk delta accumulators whose merge replays
//!   deltas in (shard, insertion) order — a deterministic sequence fixed
//!   by the chunk decomposition, not by which worker finished first. The
//!   merge is bit-identical to the sequential left fold over the items.
//! - [`stream_seed`]: derives independent per-shard RNG streams from a
//!   base seed and a shard id, so a parallel phase that needs randomness
//!   draws from streams tied to the (deterministic) shard decomposition
//!   rather than to worker identity.

use std::sync::Mutex;

/// A scoped fork-join worker pool with a fixed thread budget.
///
/// The pool holds no threads between calls: each [`WorkerPool::run_chunks`]
/// / [`WorkerPool::run_sharded`] invocation opens one [`std::thread::scope`]
/// (when it parallelizes at all), so tasks may freely borrow caller state.
/// Keep parallel regions coarse — one per pipeline phase — to amortize the
/// spawn cost.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// A pool running `threads` workers per parallel region; `0` asks the
    /// OS for the available parallelism.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        Self { threads }
    }

    /// A pool that always runs inline on the caller's thread.
    pub fn sequential() -> Self {
        Self { threads: 1 }
    }

    /// The resolved worker budget (≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(chunk_index, chunk)` over `items` split into chunks of
    /// `chunk_size`, in parallel when the pool has more than one thread and
    /// there is more than one chunk.
    ///
    /// `f` must be order-independent across chunks (chunks of distinct
    /// indices never observe each other); within a chunk it runs over the
    /// items in slice order on a single worker.
    pub fn run_chunks<T, F>(&self, items: &mut [T], chunk_size: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let mut none: [(); 0] = [];
        self.dispatch(
            items,
            chunk_size,
            &mut none,
            |i, chunk, _state: Option<&mut ()>| f(i, chunk),
        );
    }

    /// Like [`WorkerPool::run_chunks`], but hands chunk `i` exclusive access
    /// to `shards[i]` — per-shard scratch buffers, accumulators
    /// ([`ShardAccounts::shards_mut`]) or RNG streams ([`stream_seed`]).
    ///
    /// # Panics
    /// Panics unless `shards.len() == chunk_count(items.len(), chunk_size)`.
    pub fn run_sharded<T, S, F>(&self, items: &mut [T], chunk_size: usize, shards: &mut [S], f: F)
    where
        T: Send,
        S: Send,
        F: Fn(usize, &mut [T], &mut S) + Sync,
    {
        assert_eq!(
            shards.len(),
            chunk_count(items.len(), chunk_size),
            "one shard per chunk"
        );
        self.dispatch(
            items,
            chunk_size,
            shards,
            |i, chunk, state: Option<&mut S>| f(i, chunk, state.expect("shard count checked")),
        );
    }

    fn dispatch<T, S, F>(&self, items: &mut [T], chunk_size: usize, shards: &mut [S], f: F)
    where
        T: Send,
        S: Send,
        F: Fn(usize, &mut [T], Option<&mut S>) + Sync,
    {
        if items.is_empty() {
            return;
        }
        let chunk_size = chunk_size.max(1);
        let mut tasks: Vec<(usize, &mut [T], Option<&mut S>)> = {
            let mut shard_iter = shards.iter_mut();
            items
                .chunks_mut(chunk_size)
                .enumerate()
                .map(|(i, c)| (i, c, shard_iter.next()))
                .collect()
        };
        let workers = self.threads.min(tasks.len());
        if workers <= 1 {
            for (i, chunk, state) in tasks {
                f(i, chunk, state);
            }
            return;
        }
        let queue = Mutex::new(tasks.drain(..));
        let run = || {
            loop {
                // Take the next whole chunk; drop the lock before running it.
                let next = queue.lock().unwrap_or_else(|e| e.into_inner()).next();
                match next {
                    Some((i, chunk, state)) => f(i, chunk, state),
                    None => break,
                }
            }
        };
        std::thread::scope(|scope| {
            for _ in 1..workers {
                scope.spawn(run);
            }
            // The calling thread is worker 0.
            run();
        });
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::sequential()
    }
}

/// Number of chunks `chunk_size` splits `items` into (the shard count of a
/// parallel region). Depends only on the two arguments — never on the
/// thread count — so shard-indexed state is deterministic.
pub fn chunk_count(items: usize, chunk_size: usize) -> usize {
    items.div_ceil(chunk_size.max(1))
}

/// Derives the RNG stream seed of shard `shard` from a base `seed`
/// (splitmix64 over the pair, so neighboring shards get uncorrelated
/// streams). Shard ids come from the deterministic chunk decomposition;
/// two runs with different thread counts derive identical streams.
pub fn stream_seed(seed: u64, shard: u64) -> u64 {
    let mut z = seed ^ shard.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-shard delta accumulators with a deterministic, scheduling-blind
/// merge.
///
/// A parallel phase hands shard `i`'s `Vec` to chunk `i`
/// ([`WorkerPool::run_sharded`]); workers push `(key, delta)` pairs in item
/// order. Merging replays every delta in **(shard, insertion) order** —
/// with contiguous chunks that is exactly the original item order, so a
/// floating-point fold produces the same bits as the sequential loop the
/// phase replaced, at any thread count and under any chunk decomposition.
#[derive(Debug, Clone)]
pub struct ShardAccounts<K, V> {
    shards: Vec<Vec<(K, V)>>,
}

impl<K, V> Default for ShardAccounts<K, V> {
    fn default() -> Self {
        Self { shards: Vec::new() }
    }
}

impl<K: Ord + Copy, V> ShardAccounts<K, V> {
    /// An accumulator with no shards; size it with [`ShardAccounts::reset`].
    pub fn new() -> Self {
        Self { shards: Vec::new() }
    }

    /// Clears all shards and resizes to `shards` of them, keeping the
    /// allocation of every retained shard.
    pub fn reset(&mut self, shards: usize) {
        self.shards.truncate(shards);
        for s in &mut self.shards {
            s.clear();
        }
        while self.shards.len() < shards {
            self.shards.push(Vec::new());
        }
    }

    /// The per-shard delta buffers, for zipping into a parallel region.
    pub fn shards_mut(&mut self) -> &mut [Vec<(K, V)>] {
        &mut self.shards
    }

    /// Total recorded deltas across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }

    /// True when no delta is recorded.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(Vec::is_empty)
    }

    /// Drains every delta in (shard, insertion) order.
    pub fn drain_in_order(&mut self, mut f: impl FnMut(K, V)) {
        for shard in &mut self.shards {
            for (k, v) in shard.drain(..) {
                f(k, v);
            }
        }
    }

    /// Drains the deltas into `out`, a key-sorted accumulator vector:
    /// each delta either lands on its key's existing slot via `combine` or
    /// inserts a fresh `init()` slot first. Deltas of one key are combined
    /// in (shard, insertion) order; keys end up sorted ascending.
    pub fn merge_into_sorted<A>(
        &mut self,
        out: &mut Vec<(K, A)>,
        mut init: impl FnMut() -> A,
        mut combine: impl FnMut(&mut A, V),
    ) {
        self.drain_in_order(|k, v| match out.binary_search_by(|(ok, _)| ok.cmp(&k)) {
            Ok(pos) => combine(&mut out[pos].1, v),
            Err(pos) => {
                out.insert(pos, (k, init()));
                combine(&mut out[pos].1, v);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn inline_and_parallel_chunks_agree() {
        let compute = |pool: &WorkerPool, chunk: usize| {
            let mut items: Vec<u64> = (0..1000).collect();
            pool.run_chunks(&mut items, chunk, |i, c| {
                for v in c.iter_mut() {
                    *v = v.wrapping_mul(2654435761).rotate_left((i % 7) as u32);
                }
            });
            items
        };
        let seq = compute(&WorkerPool::sequential(), 64);
        for threads in [2, 4, 8] {
            let par = compute(&WorkerPool::new(threads), 64);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn every_chunk_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let mut items = vec![1u8; 257];
        WorkerPool::new(8).run_chunks(&mut items, 16, |_, c| {
            counter.fetch_add(c.len(), Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 257);
        assert_eq!(chunk_count(257, 16), 17);
        assert_eq!(chunk_count(0, 16), 0);
        assert_eq!(chunk_count(16, 16), 1);
        assert_eq!(chunk_count(17, 0), 17, "chunk size is clamped to 1");
    }

    #[test]
    fn sharded_state_is_indexed_by_chunk_not_worker() {
        let mut items: Vec<usize> = (0..100).collect();
        let chunks = chunk_count(items.len(), 9);
        let mut shards: Vec<Vec<usize>> = vec![Vec::new(); chunks];
        WorkerPool::new(4).run_sharded(&mut items, 9, &mut shards, |i, chunk, shard| {
            shard.extend(chunk.iter().map(|&v| v + i));
        });
        for (i, shard) in shards.iter().enumerate() {
            assert_eq!(shard.len(), if i == chunks - 1 { 1 } else { 9 });
            assert_eq!(shard[0], i * 9 + i);
        }
    }

    #[test]
    #[should_panic(expected = "one shard per chunk")]
    fn shard_count_mismatch_panics() {
        let mut items = [0u8; 10];
        let mut shards: Vec<Vec<(u8, u8)>> = vec![Vec::new()];
        WorkerPool::new(2).run_sharded(&mut items, 3, &mut shards, |_, _, _| {});
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        assert!(WorkerPool::new(0).threads() >= 1);
        assert_eq!(WorkerPool::sequential().threads(), 1);
        assert_eq!(WorkerPool::default().threads(), 1);
    }

    #[test]
    fn stream_seeds_differ_per_shard_and_replay() {
        let a = stream_seed(42, 0);
        let b = stream_seed(42, 1);
        assert_ne!(a, b);
        assert_eq!(a, stream_seed(42, 0));
        // Streams are usable: seeding the workspace StdRng draws diverge.
        use rand::{Rng, SeedableRng};
        let mut ra = rand::rngs::StdRng::seed_from_u64(a);
        let mut rb = rand::rngs::StdRng::seed_from_u64(b);
        assert_ne!(ra.gen_range(0..u64::MAX), rb.gen_range(0..u64::MAX));
    }

    #[test]
    fn merge_into_sorted_replays_item_order_per_key() {
        // Two shards, overlapping keys: deltas of key 7 combine in
        // (shard, insertion) order — 1.0 then 2.0 then 4.0.
        let mut acc: ShardAccounts<u32, f64> = ShardAccounts::new();
        acc.reset(2);
        acc.shards_mut()[0].extend([(7u32, 1.0f64), (3, 10.0), (7, 2.0)]);
        acc.shards_mut()[1].extend([(7, 4.0), (1, 0.5)]);
        assert_eq!(acc.len(), 5);
        let mut out: Vec<(u32, Vec<f64>)> = Vec::new();
        acc.merge_into_sorted(&mut out, Vec::new, |slot, v| slot.push(v));
        assert!(acc.is_empty());
        assert_eq!(
            out,
            vec![(1, vec![0.5]), (3, vec![10.0]), (7, vec![1.0, 2.0, 4.0]),]
        );
    }

    #[test]
    fn reset_keeps_allocations_and_clears_contents() {
        let mut acc: ShardAccounts<u32, u32> = ShardAccounts::new();
        acc.reset(3);
        acc.shards_mut()[2].push((1, 1));
        acc.reset(2);
        assert_eq!(acc.shards_mut().len(), 2);
        assert!(acc.is_empty());
        acc.reset(4);
        assert_eq!(acc.shards_mut().len(), 4);
    }

    proptest! {
        /// The contract behind the pipeline's bitwise determinism: merging
        /// ShardAccounts filled from a chunk decomposition equals the
        /// sequential left fold over the items — for any chunk size and
        /// regardless of the order in which shards were filled (i.e. of
        /// which worker finished first).
        #[test]
        fn prop_sharded_merge_equals_sequential_fold(
            items in proptest::collection::vec((0u32..8, -1e3f64..1e3), 0..120),
            chunk_size in 1usize..40,
            fill_order_seed in 0u64..1000,
        ) {
            // Sequential reference: left fold in item order.
            let mut reference: Vec<(u32, f64)> = Vec::new();
            for &(k, v) in &items {
                match reference.binary_search_by(|(ok, _)| ok.cmp(&k)) {
                    Ok(p) => reference[p].1 += v,
                    Err(p) => reference.insert(p, (k, v)),
                }
            }
            // Sharded: contiguous chunks, filled in a permuted order.
            let chunks = chunk_count(items.len(), chunk_size);
            let mut acc: ShardAccounts<u32, f64> = ShardAccounts::new();
            acc.reset(chunks);
            let mut order: Vec<usize> = (0..chunks).collect();
            // Cheap deterministic permutation of the fill order.
            for i in (1..order.len()).rev() {
                let j = (stream_seed(fill_order_seed, i as u64) % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            for &shard in &order {
                let lo = shard * chunk_size;
                let hi = (lo + chunk_size).min(items.len());
                acc.shards_mut()[shard].extend(items[lo..hi].iter().copied());
            }
            let mut merged: Vec<(u32, f64)> = Vec::new();
            acc.merge_into_sorted(&mut merged, || 0.0, |slot, v| *slot += v);
            // Bitwise equality, not approximate: same fold order, same bits.
            prop_assert_eq!(reference.len(), merged.len());
            for (a, b) in reference.iter().zip(&merged) {
                prop_assert_eq!(a.0, b.0);
                prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        }
    }
}
