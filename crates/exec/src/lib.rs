//! Deterministic fan-out for the epoch pipeline on a **persistent** worker
//! pool.
//!
//! The offline build environment has no rayon; this crate provides the
//! small slice of it Skute needs, designed around one invariant: **results
//! never depend on the thread count or on worker scheduling**.
//!
//! Three pieces:
//!
//! - [`WorkerPool`]: a long-lived pool of parked workers. Construction
//!   spawns `threads - 1` OS threads once; they park on a condvar between
//!   dispatches, so a parallel phase costs one queue handoff instead of a
//!   `std::thread::scope` spawn storm per phase (PR 3 opened 3–5 scopes
//!   per epoch). Jobs are **owned** (`'static`) closures over owned task
//!   data — the workspace denies `unsafe_code`, so borrowed-job handoff to
//!   long-lived threads (the rayon/crossbeam trick) is out; callers move
//!   task data in and get it back from [`WorkerPool::run_tasks`], whose
//!   result vector is ordered by task index, never by completion order.
//!   Dropping the pool shuts the workers down and joins them.
//! - [`ShardAccounts`]: per-chunk delta accumulators whose merge replays
//!   deltas in (shard, insertion) order — a deterministic sequence fixed
//!   by the chunk decomposition, not by which worker finished first. The
//!   merge is bit-identical to the sequential left fold over the items.
//! - [`stream_seed`]: derives independent per-shard RNG streams from a
//!   base seed and a shard id, so a parallel phase that needs randomness
//!   draws from streams tied to the (deterministic) shard decomposition
//!   rather than to worker identity.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// An owned unit of work queued on the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool handle and its parked workers.
struct Shared {
    /// Pending jobs; workers and the dispatching caller both pop from the
    /// front (the caller participates, so a pool of budget *n* runs *n*
    /// jobs concurrently with only *n − 1* spawned threads).
    queue: Mutex<VecDeque<Job>>,
    /// Signals queued work (or shutdown) to parked workers.
    work_ready: Condvar,
    /// Set once by [`WorkerPool::drop`]; workers exit when they see it
    /// with an empty queue.
    shutdown: AtomicBool,
    /// Workers currently alive (spawned and not yet exited).
    live: AtomicUsize,
}

/// A persistent fork-join worker pool with a fixed thread budget.
///
/// Workers are spawned once at construction and parked between dispatches;
/// [`WorkerPool::run_tasks`] hands them owned tasks and returns the owned
/// results in task order. With a budget of one (or zero/one tasks)
/// everything runs inline on the caller's stack — zero queue traffic, zero
/// synchronization — which is also why an explicit `threads = 1` budget is
/// the bit-exact sequential reference at no overhead.
pub struct WorkerPool {
    threads: usize,
    /// `None` for a sequential pool (no workers, everything inline).
    shared: Option<Arc<Shared>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("live_workers", &self.live_workers())
            .finish()
    }
}

impl WorkerPool {
    /// A pool running `threads` workers per parallel region; `0` asks the
    /// OS for the available parallelism. Budgets above one spawn
    /// `threads - 1` parked worker threads immediately (the calling thread
    /// is always worker 0 of a dispatch).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        if threads <= 1 {
            return Self {
                threads: 1,
                shared: None,
                workers: Vec::new(),
            };
        }
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            live: AtomicUsize::new(0),
        });
        let workers = (1..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                shared.live.fetch_add(1, Ordering::SeqCst);
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();
        Self {
            threads,
            shared: Some(shared),
            workers,
        }
    }

    /// A pool that always runs inline on the caller's thread.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// The resolved worker budget (≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Worker threads currently alive (spawned and not yet exited);
    /// `threads() - 1` for a healthy parallel pool, `0` for a sequential
    /// one — and, after the pool is dropped, provably `0` again: drop
    /// signals shutdown and joins every worker before returning.
    pub fn live_workers(&self) -> usize {
        self.shared
            .as_ref()
            .map(|s| s.live.load(Ordering::SeqCst))
            .unwrap_or(0)
    }

    /// Runs `f(task_index, task)` over the owned `tasks`, in parallel when
    /// the pool has more than one thread and there is more than one task,
    /// and returns the results **in task order** (never completion order).
    ///
    /// `f` must be order-independent across tasks (tasks never observe each
    /// other); shared inputs travel inside `f` (typically as `Arc`s) and
    /// every `Arc` clone handed to a job is dropped before its result is
    /// published, so once `run_tasks` returns the caller can reclaim a
    /// uniquely-held context with `Arc::try_unwrap`.
    ///
    /// A panicking task is caught on the worker, and the panic resumes on
    /// the calling thread after the dispatch drains.
    pub fn run_tasks<T, R, F>(&self, tasks: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T) -> R + Send + Sync + 'static,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        let shared = match &self.shared {
            Some(shared) if n > 1 => shared,
            _ => {
                // Inline: task order, caller's stack, zero synchronization.
                return tasks
                    .into_iter()
                    .enumerate()
                    .map(|(i, t)| f(i, t))
                    .collect();
            }
        };
        let f = Arc::new(f);
        let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<R>)>();
        {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            for (i, task) in tasks.into_iter().enumerate() {
                let f = Arc::clone(&f);
                let tx = tx.clone();
                queue.push_back(Box::new(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| f(i, task)));
                    // Drop the function handle (and the shared context it
                    // carries) *before* publishing the result, so that
                    // "all results received" implies "no job still holds
                    // a context Arc".
                    drop(f);
                    let _ = tx.send((i, result));
                }));
            }
            shared.work_ready.notify_all();
        }
        drop(tx);
        let mut results: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
        let mut received = 0usize;
        let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;
        let record =
            |slot: (usize, std::thread::Result<R>),
             results: &mut Vec<Option<R>>,
             panic_payload: &mut Option<Box<dyn std::any::Any + Send>>| {
                let (i, r) = slot;
                match r {
                    Ok(r) => results[i] = Some(r),
                    Err(p) => {
                        panic_payload.get_or_insert(p);
                    }
                }
            };
        while received < n {
            // Drain whatever results are already published.
            match rx.try_recv() {
                Ok(slot) => {
                    record(slot, &mut results, &mut panic_payload);
                    received += 1;
                    continue;
                }
                Err(TryRecvError::Empty) => {}
                Err(TryRecvError::Disconnected) => break,
            }
            // Participate: run one queued job (possibly ours, possibly a
            // concurrent dispatch's — either way it makes progress), or
            // block for the next result when the queue is dry.
            let job = shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front();
            match job {
                Some(job) => job(),
                None => match rx.recv() {
                    Ok(slot) => {
                        record(slot, &mut results, &mut panic_payload);
                        received += 1;
                    }
                    Err(_) => break,
                },
            }
        }
        if let Some(payload) = panic_payload {
            resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|r| r.expect("every task publishes exactly one result"))
            .collect()
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::sequential()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        if let Some(shared) = &self.shared {
            // Flag shutdown *while holding the queue mutex*: a worker
            // between its shutdown check and its condvar wait still holds
            // the lock, so taking it here guarantees every worker either
            // has not checked yet (and will see the flag) or is already
            // waiting (and receives the notify) — without it, a notify
            // landing in that window is lost and the join below hangs.
            let guard = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.work_ready.notify_all();
            drop(guard);
        }
        for handle in self.workers.drain(..) {
            // A worker that panicked outside a job already exited; joining
            // it still reaps the thread.
            let _ = handle.join();
        }
    }
}

/// The parked-worker loop: pop a job or sleep on the condvar; exit when
/// shutdown is flagged and the queue is drained.
fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared
                    .work_ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        match job {
            Some(job) => job(),
            None => break,
        }
    }
    shared.live.fetch_sub(1, Ordering::SeqCst);
}

/// Number of chunks `chunk_size` splits `items` into (the shard count of a
/// parallel region). Depends only on the two arguments — never on the
/// thread count — so shard-indexed state is deterministic.
pub fn chunk_count(items: usize, chunk_size: usize) -> usize {
    items.div_ceil(chunk_size.max(1))
}

/// Splits owned `items` into contiguous chunks of `chunk_size` (the last
/// may be shorter), preserving order — the owned-task counterpart of
/// `slice::chunks` for [`WorkerPool::run_tasks`] dispatches. The
/// decomposition depends only on the arguments, never on the thread count.
pub fn split_chunks<T>(items: Vec<T>, chunk_size: usize) -> Vec<Vec<T>> {
    let chunk_size = chunk_size.max(1);
    let mut out = Vec::with_capacity(chunk_count(items.len(), chunk_size));
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        out.push(chunk);
    }
    out
}

/// Derives the RNG stream seed of shard `shard` from a base `seed`
/// (splitmix64 over the pair, so neighboring shards get uncorrelated
/// streams). Shard ids come from the deterministic chunk decomposition;
/// two runs with different thread counts derive identical streams.
pub fn stream_seed(seed: u64, shard: u64) -> u64 {
    let mut z = seed ^ shard.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-shard delta accumulators with a deterministic, scheduling-blind
/// merge.
///
/// A parallel phase hands shard `i`'s `Vec` to task `i` (moved through
/// [`WorkerPool::run_tasks`] and moved back); workers push `(key, delta)`
/// pairs in item order. Merging replays every delta in **(shard,
/// insertion) order** — with contiguous chunks that is exactly the
/// original item order, so a floating-point fold produces the same bits as
/// the sequential loop the phase replaced, at any thread count and under
/// any chunk decomposition.
#[derive(Debug, Clone)]
pub struct ShardAccounts<K, V> {
    shards: Vec<Vec<(K, V)>>,
}

impl<K, V> Default for ShardAccounts<K, V> {
    fn default() -> Self {
        Self { shards: Vec::new() }
    }
}

impl<K: Ord + Copy, V> ShardAccounts<K, V> {
    /// An accumulator with no shards; size it with [`ShardAccounts::reset`].
    pub fn new() -> Self {
        Self { shards: Vec::new() }
    }

    /// Clears all shards and resizes to `shards` of them, keeping the
    /// allocation of every retained shard.
    pub fn reset(&mut self, shards: usize) {
        self.shards.truncate(shards);
        for s in &mut self.shards {
            s.clear();
        }
        while self.shards.len() < shards {
            self.shards.push(Vec::new());
        }
    }

    /// The per-shard delta buffers, for moving into a parallel region.
    pub fn shards_mut(&mut self) -> &mut [Vec<(K, V)>] {
        &mut self.shards
    }

    /// Total recorded deltas across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }

    /// True when no delta is recorded.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(Vec::is_empty)
    }

    /// Drains every delta in (shard, insertion) order.
    pub fn drain_in_order(&mut self, mut f: impl FnMut(K, V)) {
        for shard in &mut self.shards {
            for (k, v) in shard.drain(..) {
                f(k, v);
            }
        }
    }

    /// Drains the deltas into `out`, a key-sorted accumulator vector:
    /// each delta either lands on its key's existing slot via `combine` or
    /// inserts a fresh `init()` slot first. Deltas of one key are combined
    /// in (shard, insertion) order; keys end up sorted ascending.
    pub fn merge_into_sorted<A>(
        &mut self,
        out: &mut Vec<(K, A)>,
        mut init: impl FnMut() -> A,
        mut combine: impl FnMut(&mut A, V),
    ) {
        self.drain_in_order(|k, v| match out.binary_search_by(|(ok, _)| ok.cmp(&k)) {
            Ok(pos) => combine(&mut out[pos].1, v),
            Err(pos) => {
                out.insert(pos, (k, init()));
                combine(&mut out[pos].1, v);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn inline_and_parallel_tasks_agree() {
        let compute = |pool: &WorkerPool, chunk: usize| {
            let chunks = split_chunks((0u64..1000).collect(), chunk);
            let out = pool.run_tasks(chunks, |i, mut c: Vec<u64>| {
                for v in c.iter_mut() {
                    *v = v.wrapping_mul(2654435761).rotate_left((i % 7) as u32);
                }
                c
            });
            out.into_iter().flatten().collect::<Vec<u64>>()
        };
        let seq_pool = WorkerPool::sequential();
        let seq = compute(&seq_pool, 64);
        for threads in [2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let par = compute(&pool, 64);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn results_come_back_in_task_order() {
        let pool = WorkerPool::new(4);
        // Tasks with index-dependent work: later-queued tasks finish first
        // under contention, but the result vector is index-ordered.
        let out = pool.run_tasks((0..64usize).collect(), |i, v| {
            assert_eq!(i, v);
            let mut acc = v as u64;
            for _ in 0..(64 - v) * 500 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (v, acc & 1)
        });
        for (i, (v, _)) in out.iter().enumerate() {
            assert_eq!(i, *v);
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = Arc::new(AtomicUsize::new(0));
        let chunks = split_chunks(vec![1u8; 257], 16);
        assert_eq!(chunks.len(), 17);
        let pool = WorkerPool::new(8);
        let c = Arc::clone(&counter);
        pool.run_tasks(chunks, move |_, chunk: Vec<u8>| {
            c.fetch_add(chunk.len(), Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 257);
        assert_eq!(chunk_count(257, 16), 17);
        assert_eq!(chunk_count(0, 16), 0);
        assert_eq!(chunk_count(16, 16), 1);
        assert_eq!(chunk_count(17, 0), 17, "chunk size is clamped to 1");
        assert!(split_chunks(Vec::<u8>::new(), 4).is_empty());
        assert_eq!(
            split_chunks(vec![1, 2, 3], 0),
            vec![vec![1], vec![2], vec![3]]
        );
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        assert!(WorkerPool::new(0).threads() >= 1);
        assert_eq!(WorkerPool::sequential().threads(), 1);
        assert_eq!(WorkerPool::default().threads(), 1);
    }

    #[test]
    fn pool_spawns_workers_once_and_joins_them_on_drop() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.live_workers(), 3, "threads - 1 parked workers");
        // Two dispatches on the same workers: the census does not grow.
        for _ in 0..2 {
            let sum: u64 = pool
                .run_tasks((0..32u64).collect(), |_, v| v * 2)
                .into_iter()
                .sum();
            assert_eq!(sum, 2 * (31 * 32 / 2));
            assert_eq!(pool.live_workers(), 3);
        }
        // Drop signals shutdown and joins every worker before returning:
        // a leaked worker would keep `live` nonzero (and a stuck one would
        // hang the join, failing the test by timeout).
        let shared = Arc::clone(pool.shared.as_ref().unwrap());
        drop(pool);
        assert_eq!(
            shared.live.load(Ordering::SeqCst),
            0,
            "no worker survives drop"
        );
        assert_eq!(
            Arc::strong_count(&shared),
            1,
            "no worker still holds the pool state"
        );
    }

    #[test]
    fn sequential_pool_has_no_workers() {
        let pool = WorkerPool::sequential();
        assert_eq!(pool.live_workers(), 0);
        let out = pool.run_tasks(vec![1, 2, 3], |_, v: i32| v + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn task_panic_propagates_to_the_caller() {
        let pool = WorkerPool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_tasks((0..16usize).collect(), |_, v| {
                assert!(v != 7, "boom");
                v
            })
        }));
        assert!(result.is_err(), "the task panic must resume on the caller");
        // The pool survives a panicked dispatch.
        let out = pool.run_tasks(vec![1u32, 2], |_, v| v);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn shared_context_is_reclaimable_after_dispatch() {
        // The pipeline's take/restore contract: every context Arc handed to
        // jobs is dropped by the time run_tasks returns.
        let pool = WorkerPool::new(4);
        let ctx = Arc::new(vec![1u64; 1024]);
        let ctx2 = Arc::clone(&ctx);
        let sums = pool.run_tasks((0..8usize).collect(), move |_, i| {
            ctx2.iter().sum::<u64>() + i as u64
        });
        assert_eq!(sums[0], 1024);
        let owned = Arc::try_unwrap(ctx).expect("no job still holds the context");
        assert_eq!(owned.len(), 1024);
    }

    #[test]
    fn stream_seeds_differ_per_shard_and_replay() {
        let a = stream_seed(42, 0);
        let b = stream_seed(42, 1);
        assert_ne!(a, b);
        assert_eq!(a, stream_seed(42, 0));
        // Streams are usable: seeding the workspace StdRng draws diverge.
        use rand::{Rng, SeedableRng};
        let mut ra = rand::rngs::StdRng::seed_from_u64(a);
        let mut rb = rand::rngs::StdRng::seed_from_u64(b);
        assert_ne!(ra.gen_range(0..u64::MAX), rb.gen_range(0..u64::MAX));
    }

    #[test]
    fn merge_into_sorted_replays_item_order_per_key() {
        // Two shards, overlapping keys: deltas of key 7 combine in
        // (shard, insertion) order — 1.0 then 2.0 then 4.0.
        let mut acc: ShardAccounts<u32, f64> = ShardAccounts::new();
        acc.reset(2);
        acc.shards_mut()[0].extend([(7u32, 1.0f64), (3, 10.0), (7, 2.0)]);
        acc.shards_mut()[1].extend([(7, 4.0), (1, 0.5)]);
        assert_eq!(acc.len(), 5);
        let mut out: Vec<(u32, Vec<f64>)> = Vec::new();
        acc.merge_into_sorted(&mut out, Vec::new, |slot, v| slot.push(v));
        assert!(acc.is_empty());
        assert_eq!(
            out,
            vec![(1, vec![0.5]), (3, vec![10.0]), (7, vec![1.0, 2.0, 4.0]),]
        );
    }

    #[test]
    fn reset_keeps_allocations_and_clears_contents() {
        let mut acc: ShardAccounts<u32, u32> = ShardAccounts::new();
        acc.reset(3);
        acc.shards_mut()[2].push((1, 1));
        acc.reset(2);
        assert_eq!(acc.shards_mut().len(), 2);
        assert!(acc.is_empty());
        acc.reset(4);
        assert_eq!(acc.shards_mut().len(), 4);
    }

    /// Fills `acc` from `items` on `pool`, one shard per contiguous chunk,
    /// moving the shard buffers through the dispatch and back.
    fn fill_sharded(
        pool: &WorkerPool,
        acc: &mut ShardAccounts<u32, f64>,
        items: &[(u32, f64)],
        chunk_size: usize,
    ) {
        type Deltas = Vec<(u32, f64)>;
        let chunks = split_chunks(items.to_vec(), chunk_size);
        acc.reset(chunks.len());
        let tasks: Vec<(Deltas, Deltas)> = chunks
            .into_iter()
            .zip(acc.shards_mut().iter_mut().map(std::mem::take))
            .collect();
        let filled = pool.run_tasks(tasks, |_, (chunk, mut shard)| {
            shard.extend(chunk);
            shard
        });
        for (slot, shard) in acc.shards_mut().iter_mut().zip(filled) {
            *slot = shard;
        }
    }

    proptest! {
        /// The contract behind the pipeline's bitwise determinism: merging
        /// ShardAccounts filled from a chunk decomposition equals the
        /// sequential left fold over the items — for any chunk size and
        /// regardless of the order in which shards were filled (i.e. of
        /// which worker finished first).
        #[test]
        fn prop_sharded_merge_equals_sequential_fold(
            items in proptest::collection::vec((0u32..8, -1e3f64..1e3), 0..120),
            chunk_size in 1usize..40,
            fill_order_seed in 0u64..1000,
        ) {
            // Sequential reference: left fold in item order.
            let mut reference: Vec<(u32, f64)> = Vec::new();
            for &(k, v) in &items {
                match reference.binary_search_by(|(ok, _)| ok.cmp(&k)) {
                    Ok(p) => reference[p].1 += v,
                    Err(p) => reference.insert(p, (k, v)),
                }
            }
            // Sharded: contiguous chunks, filled in a permuted order.
            let chunks = chunk_count(items.len(), chunk_size);
            let mut acc: ShardAccounts<u32, f64> = ShardAccounts::new();
            acc.reset(chunks);
            let mut order: Vec<usize> = (0..chunks).collect();
            // Cheap deterministic permutation of the fill order.
            for i in (1..order.len()).rev() {
                let j = (stream_seed(fill_order_seed, i as u64) % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            for &shard in &order {
                let lo = shard * chunk_size;
                let hi = (lo + chunk_size).min(items.len());
                acc.shards_mut()[shard].extend(items[lo..hi].iter().copied());
            }
            let mut merged: Vec<(u32, f64)> = Vec::new();
            acc.merge_into_sorted(&mut merged, || 0.0, |slot, v| *slot += v);
            // Bitwise equality, not approximate: same fold order, same bits.
            prop_assert_eq!(reference.len(), merged.len());
            for (a, b) in reference.iter().zip(&merged) {
                prop_assert_eq!(a.0, b.0);
                prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        }

        /// A pool **reused across many dispatches** accumulates exactly the
        /// same ShardAccounts merge as a fresh pool per dispatch: parked
        /// workers carry no state between dispatches that could leak into
        /// results.
        #[test]
        fn prop_reused_pool_matches_fresh_pool_per_dispatch(
            rounds in proptest::collection::vec(
                (proptest::collection::vec((0u32..6, -1e2f64..1e2), 1..60), 1usize..16),
                1..6,
            ),
        ) {
            let reused = WorkerPool::new(4);
            let mut acc_reused: ShardAccounts<u32, f64> = ShardAccounts::new();
            let mut acc_fresh: ShardAccounts<u32, f64> = ShardAccounts::new();
            let mut merged_reused: Vec<(u32, f64)> = Vec::new();
            let mut merged_fresh: Vec<(u32, f64)> = Vec::new();
            for (items, chunk_size) in &rounds {
                fill_sharded(&reused, &mut acc_reused, items, *chunk_size);
                acc_reused.merge_into_sorted(&mut merged_reused, || 0.0, |s, v| *s += v);
                let fresh = WorkerPool::new(4);
                fill_sharded(&fresh, &mut acc_fresh, items, *chunk_size);
                acc_fresh.merge_into_sorted(&mut merged_fresh, || 0.0, |s, v| *s += v);
                drop(fresh);
                prop_assert_eq!(merged_reused.len(), merged_fresh.len());
                for (a, b) in merged_reused.iter().zip(&merged_fresh) {
                    prop_assert_eq!(a.0, b.0);
                    prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
                }
            }
            prop_assert_eq!(reused.live_workers(), 3, "dispatches never leak workers");
        }
    }
}
