//! # skute-cluster
//!
//! The physical substrate of a Skute data cloud: servers with geographic
//! locations, capacity/usage accounting, the real-rent cost model, server
//! lifecycle (arrival, retirement/failure) and the **board** — "the virtual
//! rent of each server is announced at a board (i.e. an elected server) and
//! is updated at the beginning of a new epoch" (§II).
//!
//! The economic logic that *computes* prices lives in `skute-economy`; this
//! crate owns the physical facts: how much storage and bandwidth a server
//! has, how much was consumed this epoch, what the server costs per month,
//! and which servers are currently alive.

#![warn(missing_docs)]

pub mod board;
pub mod capacity;
pub mod cost;
pub mod server;

mod cluster;

pub use board::Board;
pub use capacity::{Capacities, UsageMeter};
pub use cluster::{Cluster, ServerSpec};
pub use cost::MarginalPrice;
pub use server::{Server, ServerId, ServerStatus, HEALTH_EWMA_ALPHA};
