//! Server capacities and per-epoch usage accounting.
//!
//! The paper's simulation gives every server "fixed and reserved bandwidth
//! capacities of 300 MB/epoch for replication and 100 MB/epoch for
//! migration … also a fixed bandwidth capacity for serving queries and a
//! fixed storage capacity" (§III-A). [`Capacities`] holds those limits and
//! [`UsageMeter`] tracks consumption; bandwidth meters reset every epoch
//! while storage persists.

/// Number of bytes in a mebibyte, for readable capacity constructors.
pub const MIB: u64 = 1024 * 1024;
/// Number of bytes in a gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// Fixed resource limits of a server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Capacities {
    /// Total storage in bytes.
    pub storage_bytes: u64,
    /// Replication bandwidth budget per epoch, in bytes.
    pub replication_bw: u64,
    /// Migration bandwidth budget per epoch, in bytes.
    pub migration_bw: u64,
    /// Query-serving capacity per epoch, in queries.
    pub query_capacity: f64,
}

impl Capacities {
    /// The per-server limits of the paper's simulation: 300 MB/epoch
    /// replication, 100 MB/epoch migration, plus caller-chosen storage and
    /// query capacity (the paper fixes their existence but not their values).
    pub fn paper(storage_bytes: u64, query_capacity: f64) -> Self {
        Self {
            storage_bytes,
            replication_bw: 300 * MIB,
            migration_bw: 100 * MIB,
            query_capacity,
        }
    }
}

/// Per-epoch consumption against a server's [`Capacities`].
///
/// Storage is cumulative; bandwidth and query counters are reset by
/// [`UsageMeter::begin_epoch`]. Reservation methods are all-or-nothing: they
/// either debit the full amount and return `true`, or leave the meter
/// untouched and return `false`, so callers never partially transfer a
/// partition.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UsageMeter {
    /// Bytes of storage currently used.
    pub storage_used: u64,
    /// Replication bandwidth consumed this epoch.
    pub replication_used: u64,
    /// Migration bandwidth consumed this epoch.
    pub migration_used: u64,
    /// Queries served this epoch.
    pub queries_served: f64,
    /// Queries refused this epoch for lack of query capacity.
    pub queries_dropped: f64,
}

impl UsageMeter {
    /// Resets the per-epoch counters (bandwidth, queries); storage persists.
    pub fn begin_epoch(&mut self) {
        self.replication_used = 0;
        self.migration_used = 0;
        self.queries_served = 0.0;
        self.queries_dropped = 0.0;
    }

    /// Fraction of storage in use, in `[0, 1]`.
    pub fn storage_frac(&self, caps: &Capacities) -> f64 {
        if caps.storage_bytes == 0 {
            return 1.0;
        }
        self.storage_used as f64 / caps.storage_bytes as f64
    }

    /// Fraction of query capacity consumed this epoch, clamped to `[0, 1]`.
    pub fn query_load_frac(&self, caps: &Capacities) -> f64 {
        if caps.query_capacity <= 0.0 {
            return 1.0;
        }
        (self.queries_served / caps.query_capacity).min(1.0)
    }

    /// Free storage in bytes.
    pub fn storage_free(&self, caps: &Capacities) -> u64 {
        caps.storage_bytes.saturating_sub(self.storage_used)
    }

    /// Attempts to claim `bytes` of storage; all-or-nothing.
    #[must_use]
    pub fn reserve_storage(&mut self, caps: &Capacities, bytes: u64) -> bool {
        if self.storage_free(caps) < bytes {
            return false;
        }
        self.storage_used += bytes;
        true
    }

    /// Releases `bytes` of storage (replica deleted or migrated away).
    pub fn release_storage(&mut self, bytes: u64) {
        self.storage_used = self.storage_used.saturating_sub(bytes);
    }

    /// Attempts to start a replication transfer of `bytes`.
    ///
    /// A transfer may start as long as some replication budget remains this
    /// epoch; the transfer that exhausts the budget is allowed to overshoot
    /// (the paper: a server "updates its available bandwidth … after every
    /// data transfer that is decided to happen within one epoch", §III-A —
    /// transfers are admitted while bandwidth remains). This also keeps
    /// partitions larger than the per-epoch budget transferable, at a rate
    /// throttled to roughly `budget / size` transfers per epoch.
    #[must_use]
    pub fn reserve_replication_bw(&mut self, caps: &Capacities, bytes: u64) -> bool {
        if self.replication_used >= caps.replication_bw {
            return false;
        }
        self.replication_used = self.replication_used.saturating_add(bytes);
        true
    }

    /// Attempts to start a migration transfer of `bytes`; same
    /// admitted-while-budget-remains semantics as
    /// [`UsageMeter::reserve_replication_bw`].
    #[must_use]
    pub fn reserve_migration_bw(&mut self, caps: &Capacities, bytes: u64) -> bool {
        if self.migration_used >= caps.migration_bw {
            return false;
        }
        self.migration_used = self.migration_used.saturating_add(bytes);
        true
    }

    /// Records `queries` arriving at the server; the portion above the
    /// remaining query capacity is dropped. Returns the number served.
    pub fn serve_queries(&mut self, caps: &Capacities, queries: f64) -> f64 {
        let remaining = (caps.query_capacity - self.queries_served).max(0.0);
        let served = queries.min(remaining);
        self.queries_served += served;
        self.queries_dropped += queries - served;
        served
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps() -> Capacities {
        Capacities {
            storage_bytes: 1000,
            replication_bw: 300,
            migration_bw: 100,
            query_capacity: 50.0,
        }
    }

    #[test]
    fn paper_capacities_match_section_iii() {
        let c = Capacities::paper(10 * GIB, 1000.0);
        assert_eq!(c.replication_bw, 300 * MIB);
        assert_eq!(c.migration_bw, 100 * MIB);
        assert_eq!(c.storage_bytes, 10 * GIB);
    }

    #[test]
    fn storage_reservation_is_all_or_nothing() {
        let c = caps();
        let mut m = UsageMeter::default();
        assert!(m.reserve_storage(&c, 600));
        assert!(!m.reserve_storage(&c, 500), "only 400 left");
        assert_eq!(m.storage_used, 600, "failed reservation must not debit");
        assert!(m.reserve_storage(&c, 400));
        assert_eq!(m.storage_free(&c), 0);
    }

    #[test]
    fn release_storage_saturates() {
        let mut m = UsageMeter {
            storage_used: 10,
            ..Default::default()
        };
        m.release_storage(25);
        assert_eq!(m.storage_used, 0);
    }

    #[test]
    fn bandwidth_resets_each_epoch_storage_persists() {
        let c = caps();
        let mut m = UsageMeter::default();
        assert!(m.reserve_storage(&c, 500));
        assert!(m.reserve_replication_bw(&c, 300));
        assert!(!m.reserve_replication_bw(&c, 1), "budget exhausted");
        assert!(m.reserve_migration_bw(&c, 100));
        m.begin_epoch();
        assert_eq!(m.replication_used, 0);
        assert_eq!(m.migration_used, 0);
        assert_eq!(m.storage_used, 500, "storage is not an epoch budget");
        assert!(m.reserve_replication_bw(&c, 300));
    }

    #[test]
    fn oversized_transfer_admitted_while_budget_remains() {
        // A 250-byte transfer on a 300-byte budget leaves 50 bytes; a second
        // 250-byte transfer may still start (overshooting to 500), after
        // which the budget is exhausted.
        let c = caps();
        let mut m = UsageMeter::default();
        assert!(m.reserve_replication_bw(&c, 250));
        assert!(m.reserve_replication_bw(&c, 250));
        assert_eq!(m.replication_used, 500);
        assert!(!m.reserve_replication_bw(&c, 1));
        // A transfer larger than the whole budget can start on a fresh epoch.
        m.begin_epoch();
        assert!(
            m.reserve_migration_bw(&c, 1000),
            "oversized partition still moves"
        );
        assert!(!m.reserve_migration_bw(&c, 1));
    }

    #[test]
    fn queries_above_capacity_are_dropped() {
        let c = caps();
        let mut m = UsageMeter::default();
        assert_eq!(m.serve_queries(&c, 30.0), 30.0);
        assert_eq!(m.serve_queries(&c, 30.0), 20.0, "only 20 of capacity left");
        assert_eq!(m.queries_served, 50.0);
        assert_eq!(m.queries_dropped, 10.0);
        assert_eq!(m.query_load_frac(&c), 1.0);
    }

    #[test]
    fn fractions_are_bounded() {
        let c = caps();
        let mut m = UsageMeter::default();
        assert_eq!(m.storage_frac(&c), 0.0);
        assert_eq!(m.query_load_frac(&c), 0.0);
        assert!(m.reserve_storage(&c, 250));
        assert!((m.storage_frac(&c) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_counts_as_saturated() {
        let c = Capacities {
            storage_bytes: 0,
            replication_bw: 0,
            migration_bw: 0,
            query_capacity: 0.0,
        };
        let m = UsageMeter::default();
        assert_eq!(m.storage_frac(&c), 1.0);
        assert_eq!(m.query_load_frac(&c), 1.0);
    }
}
