//! The rent board.
//!
//! "The virtual rent of each server is announced at a board (i.e. an elected
//! server) and is updated at the beginning of a new epoch" (§II). The board
//! is the only shared state the decentralized virtual-node agents consult:
//! posted prices plus liveness, nothing else.

use std::collections::HashMap;

use crate::server::ServerId;

/// Posted virtual-rent prices for the current epoch.
#[derive(Debug, Clone, Default)]
pub struct Board {
    epoch: u64,
    prices: HashMap<ServerId, f64>,
    version: u64,
}

impl Board {
    /// An empty board at epoch zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all postings and advances the board to `epoch`.
    pub fn begin_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.prices.clear();
        self.version += 1;
    }

    /// The epoch the current postings refer to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// A counter bumped on every posting change ([`Board::post`],
    /// [`Board::withdraw`], [`Board::begin_epoch`]). Derived structures
    /// (e.g. a rent-sorted placement index) compare it against the value
    /// they were built at to decide whether they are stale.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Posts (or re-posts) the price of a server for this epoch.
    pub fn post(&mut self, server: ServerId, price: f64) {
        self.prices.insert(server, price);
        self.version += 1;
    }

    /// Withdraws a server's posting (server retired mid-epoch).
    pub fn withdraw(&mut self, server: ServerId) {
        self.prices.remove(&server);
        self.version += 1;
    }

    /// The posted price of `server`, if any.
    pub fn price_of(&self, server: ServerId) -> Option<f64> {
        self.prices.get(&server).copied()
    }

    /// Number of servers currently posted.
    pub fn len(&self) -> usize {
        self.prices.len()
    }

    /// True when no server is posted.
    pub fn is_empty(&self) -> bool {
        self.prices.is_empty()
    }

    /// The lowest posted price, used as the utility floor that stops
    /// unpopular virtual nodes from migrating forever (§II-C).
    pub fn min_price(&self) -> Option<f64> {
        self.prices
            .values()
            .copied()
            .fold(None, |acc, p| match acc {
                None => Some(p),
                Some(m) => Some(m.min(p)),
            })
    }

    /// The cheapest posted server and its price.
    pub fn cheapest(&self) -> Option<(ServerId, f64)> {
        self.prices
            .iter()
            .min_by(|a, b| a.1.total_cmp(b.1).then_with(|| a.0.cmp(b.0)))
            .map(|(&id, &p)| (id, p))
    }

    /// Iterates over all postings in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (ServerId, f64)> + '_ {
        self.prices.iter().map(|(&id, &p)| (id, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn postings_are_per_epoch() {
        let mut b = Board::new();
        b.begin_epoch(1);
        b.post(ServerId(0), 2.0);
        b.post(ServerId(1), 1.5);
        assert_eq!(b.len(), 2);
        assert_eq!(b.epoch(), 1);
        b.begin_epoch(2);
        assert!(b.is_empty(), "prices do not carry across epochs");
    }

    #[test]
    fn min_and_cheapest() {
        let mut b = Board::new();
        assert_eq!(b.min_price(), None);
        assert_eq!(b.cheapest(), None);
        b.post(ServerId(0), 2.0);
        b.post(ServerId(1), 1.5);
        b.post(ServerId(2), 3.0);
        assert_eq!(b.min_price(), Some(1.5));
        assert_eq!(b.cheapest(), Some((ServerId(1), 1.5)));
    }

    #[test]
    fn cheapest_ties_break_deterministically() {
        let mut b = Board::new();
        b.post(ServerId(9), 1.0);
        b.post(ServerId(2), 1.0);
        assert_eq!(
            b.cheapest(),
            Some((ServerId(2), 1.0)),
            "lowest id wins ties"
        );
    }

    #[test]
    fn version_bumps_on_every_posting_change() {
        let mut b = Board::new();
        let v0 = b.version();
        b.post(ServerId(0), 2.0);
        let v1 = b.version();
        assert!(v1 > v0);
        b.withdraw(ServerId(0));
        let v2 = b.version();
        assert!(v2 > v1);
        b.begin_epoch(5);
        assert!(b.version() > v2);
    }

    #[test]
    fn repost_overwrites_and_withdraw_removes() {
        let mut b = Board::new();
        b.post(ServerId(0), 2.0);
        b.post(ServerId(0), 4.0);
        assert_eq!(b.price_of(ServerId(0)), Some(4.0));
        b.withdraw(ServerId(0));
        assert_eq!(b.price_of(ServerId(0)), None);
    }
}
