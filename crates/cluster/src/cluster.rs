//! The cluster: the set of physical servers forming a data cloud.

use skute_geo::{Location, Topology};

use crate::capacity::{Capacities, UsageMeter};
use crate::cost::MarginalPrice;
use crate::server::{Server, ServerId, ServerStatus};

/// Everything needed to commission one server.
#[derive(Debug, Clone)]
pub struct ServerSpec {
    /// Geographic position.
    pub location: Location,
    /// Resource limits.
    pub capacities: Capacities,
    /// Real operational cost in $/month.
    pub monthly_cost: f64,
    /// Confidence factor in `[0, 1]`.
    pub confidence: f64,
}

/// The set of physical servers of a data cloud, with lifecycle management.
///
/// Server ids are slot indices and are never reused; retired servers stay in
/// the table (status [`ServerStatus::Retired`]) so late references resolve
/// to a tombstone instead of dangling.
#[derive(Debug, Clone, Default)]
pub struct Cluster {
    servers: Vec<Server>,
    /// Bumped on every mutable access; see [`Cluster::version`].
    version: u64,
}

impl Cluster {
    /// An empty cluster.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a cluster with one server per location of `topology`, using
    /// `spec` to configure each (the paper differentiates cost: "$100 for
    /// 70% of the servers and $125 for the rest").
    pub fn from_topology(
        topology: &Topology,
        mut spec: impl FnMut(usize, Location) -> ServerSpec,
    ) -> Self {
        let mut cluster = Self::new();
        for (i, loc) in topology.iter_servers().enumerate() {
            cluster.commission(spec(i, loc), 0);
        }
        cluster
    }

    /// Adds a server to the cloud at `epoch`, returning its id.
    ///
    /// # Panics
    /// Panics if the spec's confidence is outside `[0, 1]`.
    pub fn commission(&mut self, spec: ServerSpec, epoch: u64) -> ServerId {
        assert!(
            (0.0..=1.0).contains(&spec.confidence),
            "confidence must lie in [0, 1]"
        );
        self.version += 1;
        let id = ServerId(self.servers.len() as u32);
        self.servers.push(Server {
            id,
            location: spec.location,
            confidence: spec.confidence,
            base_confidence: spec.confidence,
            health_score: 1.0,
            capacities: spec.capacities,
            usage: UsageMeter::default(),
            monthly_cost: spec.monthly_cost,
            marginal_price: MarginalPrice::paper(),
            status: ServerStatus::Alive,
            joined_epoch: epoch,
            retired_epoch: None,
        });
        id
    }

    /// Retires (removes/fails) a server at `epoch`. Its stored data is lost;
    /// callers must drop the virtual nodes it hosted. Idempotent.
    pub fn retire(&mut self, id: ServerId, epoch: u64) {
        self.version += 1;
        if let Some(s) = self.servers.get_mut(id.0 as usize) {
            if s.status == ServerStatus::Alive {
                s.status = ServerStatus::Retired;
                s.retired_epoch = Some(epoch);
                s.usage = UsageMeter::default();
            }
        }
    }

    /// The server with id `id`, alive or retired.
    pub fn get(&self, id: ServerId) -> Option<&Server> {
        self.servers.get(id.0 as usize)
    }

    /// Mutable access to the server with id `id`.
    pub fn get_mut(&mut self, id: ServerId) -> Option<&mut Server> {
        self.version += 1;
        self.servers.get_mut(id.0 as usize)
    }

    /// A counter bumped on every mutable access to the cluster (server
    /// lifecycle *and* usage-meter mutation paths). It over-approximates
    /// change — obtaining a `&mut Server` counts even if nothing is
    /// written — which is exactly what derived read structures (e.g. a
    /// rent-sorted placement index) need for conservative invalidation.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The server with id `id` if it is alive.
    pub fn get_alive(&self, id: ServerId) -> Option<&Server> {
        self.get(id).filter(|s| s.is_alive())
    }

    /// Total number of commissioned servers, dead or alive.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// True when no server was ever commissioned.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Number of alive servers.
    pub fn alive_count(&self) -> usize {
        self.servers.iter().filter(|s| s.is_alive()).count()
    }

    /// Iterates over all servers, dead or alive.
    pub fn iter(&self) -> impl Iterator<Item = &Server> {
        self.servers.iter()
    }

    /// Iterates over alive servers.
    pub fn alive(&self) -> impl Iterator<Item = &Server> {
        self.servers.iter().filter(|s| s.is_alive())
    }

    /// Iterates mutably over alive servers.
    pub fn alive_mut(&mut self) -> impl Iterator<Item = &mut Server> {
        self.version += 1;
        self.servers.iter_mut().filter(|s| s.is_alive())
    }

    /// Ids of all alive servers, ascending.
    pub fn alive_ids(&self) -> Vec<ServerId> {
        self.alive().map(|s| s.id).collect()
    }

    /// Resets the per-epoch meters of every alive server.
    pub fn begin_epoch(&mut self) {
        for s in self.alive_mut() {
            s.usage.begin_epoch();
        }
    }

    /// Aggregate storage capacity of alive servers, in bytes.
    pub fn total_storage(&self) -> u64 {
        self.alive().map(|s| s.capacities.storage_bytes).sum()
    }

    /// Aggregate storage used on alive servers, in bytes.
    pub fn total_storage_used(&self) -> u64 {
        self.alive().map(|s| s.usage.storage_used).sum()
    }

    /// Total real monthly cost of all alive servers.
    pub fn total_monthly_cost(&self) -> f64 {
        self.alive().map(|s| s.monthly_cost).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::GIB;

    fn spec(loc: Location, cost: f64) -> ServerSpec {
        ServerSpec {
            location: loc,
            capacities: Capacities::paper(10 * GIB, 1000.0),
            monthly_cost: cost,
            confidence: 1.0,
        }
    }

    #[test]
    fn from_topology_commissions_every_location() {
        let t = Topology::paper();
        let cluster = Cluster::from_topology(&t, |i, loc| {
            spec(loc, if i % 10 < 7 { 100.0 } else { 125.0 })
        });
        assert_eq!(cluster.len(), 200);
        assert_eq!(cluster.alive_count(), 200);
        let cheap = cluster.alive().filter(|s| s.monthly_cost == 100.0).count();
        assert_eq!(cheap, 140, "70% of 200 servers at $100");
        assert!((cluster.total_monthly_cost() - (140.0 * 100.0 + 60.0 * 125.0)).abs() < 1e-9);
    }

    #[test]
    fn retire_is_idempotent_and_clears_usage() {
        let t = Topology::paper();
        let mut cluster = Cluster::from_topology(&t, |_, loc| spec(loc, 100.0));
        let id = ServerId(5);
        {
            let s = cluster.get_mut(id).unwrap();
            let caps = s.capacities;
            assert!(s.usage.reserve_storage(&caps, GIB));
        }
        cluster.retire(id, 42);
        cluster.retire(id, 77); // second retire keeps the original epoch
        let s = cluster.get(id).unwrap();
        assert_eq!(s.status, ServerStatus::Retired);
        assert_eq!(s.retired_epoch, Some(42));
        assert_eq!(s.usage.storage_used, 0);
        assert_eq!(cluster.alive_count(), 199);
        assert!(cluster.get_alive(id).is_none());
    }

    #[test]
    fn commission_after_retire_gets_fresh_id() {
        let mut cluster = Cluster::new();
        let a = cluster.commission(spec(Location::new(0, 0, 0, 0, 0, 0), 100.0), 0);
        cluster.retire(a, 1);
        let b = cluster.commission(spec(Location::new(0, 0, 0, 0, 0, 1), 100.0), 2);
        assert_ne!(a, b);
        assert_eq!(cluster.get(b).unwrap().joined_epoch, 2);
        assert_eq!(cluster.len(), 2);
        assert_eq!(cluster.alive_count(), 1);
    }

    #[test]
    fn begin_epoch_resets_meters_of_alive_servers() {
        let mut cluster = Cluster::new();
        let id = cluster.commission(spec(Location::new(0, 0, 0, 0, 0, 0), 100.0), 0);
        {
            let s = cluster.get_mut(id).unwrap();
            let caps = s.capacities;
            assert!(s.usage.reserve_replication_bw(&caps, 100));
        }
        cluster.begin_epoch();
        assert_eq!(cluster.get(id).unwrap().usage.replication_used, 0);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn invalid_confidence_rejected() {
        let mut cluster = Cluster::new();
        let mut s = spec(Location::new(0, 0, 0, 0, 0, 0), 100.0);
        s.confidence = 1.5;
        let _ = cluster.commission(s, 0);
    }

    #[test]
    fn version_tracks_every_mutation_path() {
        let t = Topology::paper();
        let mut cluster = Cluster::from_topology(&t, |_, loc| spec(loc, 100.0));
        let v0 = cluster.version();
        let _ = cluster.get_mut(ServerId(0));
        let v1 = cluster.version();
        assert!(v1 > v0, "get_mut must invalidate derived indexes");
        let _ = cluster.alive_mut().count();
        let v2 = cluster.version();
        assert!(v2 > v1);
        cluster.begin_epoch();
        let v3 = cluster.version();
        assert!(v3 > v2);
        cluster.retire(ServerId(0), 1);
        assert!(cluster.version() > v3);
        // Read-only accessors leave the version untouched.
        let v = cluster.version();
        let _ = cluster.alive_count();
        let _ = cluster.get(ServerId(1));
        let _ = cluster.total_storage_used();
        assert_eq!(cluster.version(), v);
    }

    #[test]
    fn totals_only_count_alive() {
        let mut cluster = Cluster::new();
        let a = cluster.commission(spec(Location::new(0, 0, 0, 0, 0, 0), 100.0), 0);
        let _b = cluster.commission(spec(Location::new(0, 0, 0, 0, 0, 1), 125.0), 0);
        assert_eq!(cluster.total_storage(), 20 * GIB);
        cluster.retire(a, 1);
        assert_eq!(cluster.total_storage(), 10 * GIB);
        assert!((cluster.total_monthly_cost() - 125.0).abs() < 1e-12);
    }
}
