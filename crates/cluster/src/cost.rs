//! The real-rent cost model and the marginal usage price `up`.
//!
//! Eq. (1) prices an epoch of a server as
//! `c = up · (1 + α·storage_usage + β·query_load)` where `up` — the
//! *marginal usage price* — "can be calculated by the total monthly real
//! rent paid by virtual nodes and the mean usage of the server in the
//! previous month" (§II-A).
//!
//! Because every virtual node pays rent **every epoch it occupies the
//! server** (not per unit of use), the consistent amortization of the
//! monthly real rent is the flat per-epoch share `monthly_cost /
//! epochs_per_month`; the congestion-dependence of eq. (1) comes entirely
//! from the α/β terms. This is the default.
//!
//! An alternative reading — dividing the share by the trailing mean
//! utilization, so under-used servers charge more per marginal unit — is
//! available via [`MarginalPrice::with_utilization_pricing`], but beware its
//! fixed point: an empty server becomes the *most* expensive in the cloud
//! and no virtual node ever migrates onto it, permanently stranding its
//! capacity (this is observable in the `fig5_saturation` experiment, which
//! loses 30% of the cloud with it).

/// Estimator of the marginal usage price `up` of eq. (1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginalPrice {
    /// Number of epochs that make up one (real-rent) month.
    pub epochs_per_month: u32,
    /// EWMA smoothing factor for the trailing mean utilization, in `(0, 1]`.
    pub ewma_alpha: f64,
    /// Floor applied to the mean utilization before dividing, in `(0, 1]`.
    /// Only used when utilization pricing is enabled.
    pub utilization_floor: f64,
    /// Whether `up` is divided by the trailing mean utilization.
    pub utilization_pricing: bool,
    mean_utilization: f64,
}

impl MarginalPrice {
    /// Creates an estimator with flat amortization (the default model).
    ///
    /// # Panics
    /// Panics unless `epochs_per_month ≥ 1`, `0 < ewma_alpha ≤ 1` and
    /// `0 < utilization_floor ≤ 1`.
    pub fn new(epochs_per_month: u32, ewma_alpha: f64, utilization_floor: f64) -> Self {
        assert!(
            epochs_per_month >= 1,
            "a month must span at least one epoch"
        );
        assert!(
            ewma_alpha > 0.0 && ewma_alpha <= 1.0,
            "ewma_alpha must be in (0, 1]"
        );
        assert!(
            utilization_floor > 0.0 && utilization_floor <= 1.0,
            "utilization_floor must be in (0, 1]"
        );
        Self {
            epochs_per_month,
            ewma_alpha,
            utilization_floor,
            utilization_pricing: false,
            // Start from full utilization so the utilization-pricing mode
            // boots at the plain per-epoch share.
            mean_utilization: 1.0,
        }
    }

    /// Defaults used throughout the paper reproduction: 720 epochs/month
    /// (hourly epochs), flat amortization.
    pub fn paper() -> Self {
        Self::new(720, 0.05, 0.2)
    }

    /// Enables utilization-divided pricing (see the module docs for the
    /// stranded-capacity caveat).
    #[must_use]
    pub fn with_utilization_pricing(mut self) -> Self {
        self.utilization_pricing = true;
        self
    }

    /// Feeds one epoch's observed utilization (in `[0, 1]`) into the
    /// trailing mean.
    pub fn observe(&mut self, utilization: f64) {
        let u = utilization.clamp(0.0, 1.0);
        self.mean_utilization =
            (1.0 - self.ewma_alpha) * self.mean_utilization + self.ewma_alpha * u;
    }

    /// Current trailing mean utilization.
    pub fn mean_utilization(&self) -> f64 {
        self.mean_utilization
    }

    /// The marginal usage price `up` for a server with the given real
    /// monthly cost.
    pub fn price(&self, monthly_cost: f64) -> f64 {
        let per_epoch = monthly_cost / f64::from(self.epochs_per_month);
        if self.utilization_pricing {
            per_epoch / self.mean_utilization.max(self.utilization_floor)
        } else {
            per_epoch
        }
    }
}

impl Default for MarginalPrice {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_price_is_plain_rent_share() {
        let mut mp = MarginalPrice::new(100, 0.5, 0.2);
        assert!((mp.price(100.0) - 1.0).abs() < 1e-12);
        // Flat mode ignores utilization entirely.
        for _ in 0..50 {
            mp.observe(0.1);
        }
        assert!((mp.price(100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_mode_boots_at_plain_share() {
        let mp = MarginalPrice::new(100, 0.1, 0.2).with_utilization_pricing();
        assert!((mp.price(100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_mode_charges_idle_servers_more() {
        let mut mp = MarginalPrice::new(100, 0.5, 0.2).with_utilization_pricing();
        let busy = mp.price(100.0);
        for _ in 0..50 {
            mp.observe(0.25);
        }
        let idle = mp.price(100.0);
        assert!(idle > busy, "idle={idle} busy={busy}");
        assert!((mp.mean_utilization() - 0.25).abs() < 1e-3);
    }

    #[test]
    fn utilization_floor_caps_the_blowup() {
        let mut mp = MarginalPrice::new(100, 1.0, 0.2).with_utilization_pricing();
        mp.observe(0.0);
        // 1/0.2 = 5× the per-epoch share, not infinity.
        assert!((mp.price(100.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn observe_clamps_out_of_range() {
        let mut mp = MarginalPrice::new(10, 1.0, 0.2);
        mp.observe(7.0);
        assert_eq!(mp.mean_utilization(), 1.0);
        mp.observe(-3.0);
        assert_eq!(mp.mean_utilization(), 0.0);
    }

    #[test]
    fn more_expensive_server_has_higher_up() {
        let mp = MarginalPrice::paper();
        assert!(mp.price(125.0) > mp.price(100.0));
    }

    #[test]
    #[should_panic(expected = "ewma_alpha")]
    fn invalid_alpha_rejected() {
        let _ = MarginalPrice::new(10, 0.0, 0.2);
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn zero_epoch_month_rejected() {
        let _ = MarginalPrice::new(0, 0.5, 0.2);
    }
}
