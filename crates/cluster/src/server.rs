//! Physical servers.

use std::fmt;

use skute_geo::Location;

use crate::capacity::{Capacities, UsageMeter};
use crate::cost::MarginalPrice;

/// Identifier of a physical server within a [`crate::Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServerId(pub u32);

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Lifecycle state of a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerStatus {
    /// Serving traffic and hosting virtual nodes.
    Alive,
    /// Removed from the cloud (decommissioned or failed). Its data is gone;
    /// surviving replicas must re-establish availability.
    Retired,
}

/// Smoothing factor of the health EWMA: each [`Server::observe_health`]
/// sample moves the score a quarter of the way toward the observation, so
/// a freshly degraded server is priced most of the way down within one
/// gray window and recovers on the same timescale.
pub const HEALTH_EWMA_ALPHA: f64 = 0.25;

/// A physical server: a location in the geographic hierarchy, capacity
/// limits, usage meters, a real monthly cost and a confidence factor.
///
/// *Confidence* is the paper's `conf ∈ [0, 1]`: "a subjective estimation
/// based on technical factors as well as non-technical factors (e.g.
/// political and economical stability of the country)" (§II-B). It scales
/// the availability contribution of every replica pair involving this
/// server.
///
/// The effective `confidence` every consumer reads is the product of the
/// static `base_confidence` the operator commissioned the server with and
/// a dynamic `health_score` updated by an EWMA over observed
/// outcome/latency samples ([`Server::observe_health`]). Clouds that
/// never observe health leave the score at 1.0, so legacy trajectories
/// are bit-identical.
#[derive(Debug, Clone)]
pub struct Server {
    /// Server identifier.
    pub id: ServerId,
    /// Position in the geographic hierarchy.
    pub location: Location,
    /// Effective confidence factor in `[0, 1]`: `base_confidence ×
    /// health_score`. This is the value every eq.-(2)/(3)/(4) consumer
    /// reads.
    pub confidence: f64,
    /// The operator-assessed confidence the server was commissioned with
    /// (the paper's static `conf`).
    pub base_confidence: f64,
    /// EWMA over observed health samples in `[0, 1]`; 1.0 until the
    /// first observation.
    pub health_score: f64,
    /// Fixed resource limits.
    pub capacities: Capacities,
    /// Consumption against the limits.
    pub usage: UsageMeter,
    /// Real operational cost in $/month paid by the data owner.
    pub monthly_cost: f64,
    /// Marginal usage price estimator (the `up` term of eq. 1).
    pub marginal_price: MarginalPrice,
    /// Lifecycle state.
    pub status: ServerStatus,
    /// Epoch at which the server joined the cloud.
    pub joined_epoch: u64,
    /// Epoch at which the server was retired, if it was.
    pub retired_epoch: Option<u64>,
}

impl Server {
    /// True when the server is alive.
    pub fn is_alive(&self) -> bool {
        self.status == ServerStatus::Alive
    }

    /// Fraction of storage used, in `[0, 1]`.
    pub fn storage_frac(&self) -> f64 {
        self.usage.storage_frac(&self.capacities)
    }

    /// Fraction of query capacity consumed this epoch, in `[0, 1]`.
    pub fn query_load_frac(&self) -> f64 {
        self.usage.query_load_frac(&self.capacities)
    }

    /// Combined utilization measure fed to the marginal-price estimator:
    /// the mean of storage and query-load fractions.
    pub fn utilization(&self) -> f64 {
        0.5 * (self.storage_frac() + self.query_load_frac())
    }

    /// Free storage in bytes.
    pub fn storage_free(&self) -> u64 {
        self.usage.storage_free(&self.capacities)
    }

    /// Folds one health observation (`1.0` = perfect, `0.0` = unusable)
    /// into the EWMA and refreshes the effective confidence. Samples come
    /// from per-server outcome/latency measurements — in simulation,
    /// deterministic sim-time samples derived from the gray fault plan.
    pub fn observe_health(&mut self, sample: f64) {
        let sample = sample.clamp(0.0, 1.0);
        self.health_score += HEALTH_EWMA_ALPHA * (sample - self.health_score);
        self.confidence = self.base_confidence * self.health_score;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::MIB;

    fn server() -> Server {
        Server {
            id: ServerId(3),
            location: Location::new(0, 0, 0, 0, 0, 0),
            confidence: 0.9,
            base_confidence: 0.9,
            health_score: 1.0,
            capacities: Capacities::paper(1000 * MIB, 100.0),
            usage: UsageMeter::default(),
            monthly_cost: 100.0,
            marginal_price: MarginalPrice::paper(),
            status: ServerStatus::Alive,
            joined_epoch: 0,
            retired_epoch: None,
        }
    }

    #[test]
    fn alive_and_retired() {
        let mut s = server();
        assert!(s.is_alive());
        s.status = ServerStatus::Retired;
        assert!(!s.is_alive());
    }

    #[test]
    fn utilization_averages_storage_and_load() {
        let mut s = server();
        assert!(s.usage.reserve_storage(&s.capacities, 500 * MIB));
        s.usage.serve_queries(&s.capacities.clone(), 100.0);
        assert!((s.storage_frac() - 0.5).abs() < 1e-12);
        assert!((s.query_load_frac() - 1.0).abs() < 1e-12);
        assert!((s.utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn display_server_id() {
        assert_eq!(ServerId(17).to_string(), "s17");
    }

    #[test]
    fn health_ewma_scales_effective_confidence() {
        let mut s = server();
        assert_eq!(s.confidence, 0.9, "untouched until the first sample");
        s.observe_health(0.0);
        assert!((s.health_score - 0.75).abs() < 1e-12);
        assert!((s.confidence - 0.9 * 0.75).abs() < 1e-12);
        // Sustained degradation converges toward base × sample.
        for _ in 0..64 {
            s.observe_health(0.1);
        }
        assert!((s.confidence - 0.9 * 0.1).abs() < 1e-6);
        // Recovery converges back toward base.
        for _ in 0..64 {
            s.observe_health(1.0);
        }
        assert!((s.confidence - 0.9).abs() < 1e-6);
        // Samples are clamped to [0, 1].
        s.observe_health(7.0);
        assert!(s.confidence <= s.base_confidence + 1e-12);
    }
}
