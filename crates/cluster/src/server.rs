//! Physical servers.

use std::fmt;

use skute_geo::Location;

use crate::capacity::{Capacities, UsageMeter};
use crate::cost::MarginalPrice;

/// Identifier of a physical server within a [`crate::Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServerId(pub u32);

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Lifecycle state of a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerStatus {
    /// Serving traffic and hosting virtual nodes.
    Alive,
    /// Removed from the cloud (decommissioned or failed). Its data is gone;
    /// surviving replicas must re-establish availability.
    Retired,
}

/// A physical server: a location in the geographic hierarchy, capacity
/// limits, usage meters, a real monthly cost and a confidence factor.
///
/// *Confidence* is the paper's `conf ∈ [0, 1]`: "a subjective estimation
/// based on technical factors as well as non-technical factors (e.g.
/// political and economical stability of the country)" (§II-B). It scales
/// the availability contribution of every replica pair involving this
/// server.
#[derive(Debug, Clone)]
pub struct Server {
    /// Server identifier.
    pub id: ServerId,
    /// Position in the geographic hierarchy.
    pub location: Location,
    /// Confidence factor in `[0, 1]`.
    pub confidence: f64,
    /// Fixed resource limits.
    pub capacities: Capacities,
    /// Consumption against the limits.
    pub usage: UsageMeter,
    /// Real operational cost in $/month paid by the data owner.
    pub monthly_cost: f64,
    /// Marginal usage price estimator (the `up` term of eq. 1).
    pub marginal_price: MarginalPrice,
    /// Lifecycle state.
    pub status: ServerStatus,
    /// Epoch at which the server joined the cloud.
    pub joined_epoch: u64,
    /// Epoch at which the server was retired, if it was.
    pub retired_epoch: Option<u64>,
}

impl Server {
    /// True when the server is alive.
    pub fn is_alive(&self) -> bool {
        self.status == ServerStatus::Alive
    }

    /// Fraction of storage used, in `[0, 1]`.
    pub fn storage_frac(&self) -> f64 {
        self.usage.storage_frac(&self.capacities)
    }

    /// Fraction of query capacity consumed this epoch, in `[0, 1]`.
    pub fn query_load_frac(&self) -> f64 {
        self.usage.query_load_frac(&self.capacities)
    }

    /// Combined utilization measure fed to the marginal-price estimator:
    /// the mean of storage and query-load fractions.
    pub fn utilization(&self) -> f64 {
        0.5 * (self.storage_frac() + self.query_load_frac())
    }

    /// Free storage in bytes.
    pub fn storage_free(&self) -> u64 {
        self.usage.storage_free(&self.capacities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::MIB;

    fn server() -> Server {
        Server {
            id: ServerId(3),
            location: Location::new(0, 0, 0, 0, 0, 0),
            confidence: 0.9,
            capacities: Capacities::paper(1000 * MIB, 100.0),
            usage: UsageMeter::default(),
            monthly_cost: 100.0,
            marginal_price: MarginalPrice::paper(),
            status: ServerStatus::Alive,
            joined_epoch: 0,
            retired_epoch: None,
        }
    }

    #[test]
    fn alive_and_retired() {
        let mut s = server();
        assert!(s.is_alive());
        s.status = ServerStatus::Retired;
        assert!(!s.is_alive());
    }

    #[test]
    fn utilization_averages_storage_and_load() {
        let mut s = server();
        assert!(s.usage.reserve_storage(&s.capacities, 500 * MIB));
        s.usage.serve_queries(&s.capacities.clone(), 100.0);
        assert!((s.storage_frac() - 0.5).abs() < 1e-12);
        assert!((s.query_load_frac() - 1.0).abs() < 1e-12);
        assert!((s.utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn display_server_id() {
        assert_eq!(ServerId(17).to_string(), "s17");
    }
}
