//! Time-series recording and CSV output for the figure harnesses.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::engine::Observation;

/// Collects per-epoch [`Observation`]s and renders them as CSV, one row per
/// epoch with per-ring columns — the raw material of Figs. 2–5.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    observations: Vec<Observation>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one epoch.
    pub fn push(&mut self, obs: Observation) {
        self.observations.push(obs);
    }

    /// The recorded observations.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// Number of recorded epochs.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Renders the full time series as CSV.
    pub fn to_csv(&self) -> String {
        let rings = self
            .observations
            .first()
            .map(|o| o.report.rings.len())
            .unwrap_or(0);
        let mut out = String::new();
        out.push_str("epoch,alive_servers,total_vnodes,cheap_mean_vnodes,expensive_mean_vnodes");
        out.push_str(",offered_rate,storage_frac,insert_failures,partitions_lost");
        out.push_str(",repl_avail,repl_profit,migrations,suicides,splits,blocked");
        out.push_str(",repl_bytes,migr_bytes,rent_paid,utility_earned");
        for r in 0..rings {
            let _ = write!(
                out,
                ",ring{r}_vnodes,ring{r}_partitions,ring{r}_load_per_server,ring{r}_load_cv,ring{r}_mean_avail,ring{r}_sla_frac,ring{r}_served,ring{r}_dropped,ring{r}_client_dist"
            );
        }
        out.push('\n');
        for obs in &self.observations {
            let r = &obs.report;
            let _ = write!(
                out,
                "{},{},{},{:.3},{:.3},{:.1},{:.4},{},{},{},{},{},{},{},{},{},{},{:.4},{:.4}",
                r.epoch,
                r.alive_servers,
                r.total_vnodes(),
                obs.cheap_mean_vnodes,
                obs.expensive_mean_vnodes,
                obs.offered_rate,
                r.storage_frac(),
                r.insert_failures,
                r.partitions_lost,
                r.actions.availability_replications,
                r.actions.profit_replications,
                r.actions.migrations,
                r.actions.suicides,
                r.actions.splits,
                r.actions.blocked_transfers,
                r.actions.replicated_bytes,
                r.actions.migrated_bytes,
                r.rent_paid,
                r.utility_earned,
            );
            for ring in &r.rings {
                let _ = write!(
                    out,
                    ",{},{},{:.4},{:.4},{:.2},{:.4},{:.1},{:.1},{:.3}",
                    ring.vnodes,
                    ring.partitions,
                    ring.load_per_server,
                    ring.load_cv,
                    ring.mean_availability,
                    ring.sla_satisfied_frac,
                    ring.queries_served,
                    ring.queries_dropped,
                    ring.mean_client_distance,
                );
            }
            out.push('\n');
        }
        out
    }

    /// Writes the CSV to `path`, creating parent directories as needed.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }

    /// Mean of a metric over the last `window` epochs.
    pub fn tail_mean(&self, window: usize, metric: impl Fn(&Observation) -> f64) -> f64 {
        let n = self.observations.len();
        if n == 0 {
            return 0.0;
        }
        let start = n.saturating_sub(window);
        let slice = &self.observations[start..];
        slice.iter().map(&metric).sum::<f64>() / slice.len() as f64
    }
}

impl Extend<Observation> for Recorder {
    fn extend<T: IntoIterator<Item = Observation>>(&mut self, iter: T) {
        self.observations.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;
    use crate::paper;

    #[test]
    fn csv_has_header_and_rows() {
        let mut sim = Simulation::new(paper::scaled_scenario("csv", 4, 100, 3));
        let mut rec = Recorder::new();
        rec.extend(sim.run());
        assert_eq!(rec.len(), 3);
        let csv = rec.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4, "header + 3 epochs");
        assert!(lines[0].starts_with("epoch,alive_servers"));
        assert!(lines[0].contains("ring2_vnodes"), "three rings expected");
        let cols = lines[0].split(',').count();
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), cols, "ragged row: {row}");
        }
    }

    #[test]
    fn tail_mean_windows() {
        let mut sim = Simulation::new(paper::scaled_scenario("tm", 4, 100, 5));
        let mut rec = Recorder::new();
        rec.extend(sim.run());
        let all = rec.tail_mean(100, |o| o.report.alive_servers as f64);
        assert_eq!(all, 200.0);
        assert_eq!(rec.tail_mean(2, |o| o.report.epoch as f64), 4.5);
        assert_eq!(Recorder::new().tail_mean(5, |_| 1.0), 0.0);
    }

    #[test]
    fn write_csv_creates_dirs() {
        let mut sim = Simulation::new(paper::scaled_scenario("io", 4, 100, 2));
        let mut rec = Recorder::new();
        rec.extend(sim.run());
        let dir = std::env::temp_dir().join("skute-test-recorder");
        let path = dir.join("nested").join("out.csv");
        rec.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("epoch,"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
