//! Canonical scenarios of the paper's evaluation (§III).

use skute_core::SkuteConfig;
use skute_geo::{ClientGeo, Topology};
use skute_workload::{InsertGenerator, SlashdotTrace};

use crate::events::{CloudEvent, Schedule};
use crate::scenario::{Scenario, ScenarioApp, TraceKind};

/// Number of bytes in a mebibyte.
pub const MIB: u64 = 1024 * 1024;
/// Number of bytes in a gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// The §III-A baseline: 200 servers over 10 countries (5 continents × 2
/// countries × 2 datacenters × 1 room × 2 racks × 5 servers), three
/// applications whose SLAs are satisfied by 2/3/4 replicas, M = 200
/// partitions each, Pareto(1, 50) popularity, Poisson λ = 3000
/// queries/epoch, uniform client geography, 70% of servers at $100 and the
/// rest at $125.
///
/// Partition sizing: the paper loads "500 GB" of application data but also
/// caps partitions at 256 MB — at M = 200 per app those two numbers cannot
/// both hold (500 GB / 600 partitions ≈ 833 MB each), so we preload 128 MiB
/// per partition: at equilibrium (2+3+4) × 200 replicas × 128 MiB ≈ 225 GiB
/// stored, the same order of magnitude, with every partition under the cap
/// (see DESIGN.md §3.7).
pub fn base_scenario() -> Scenario {
    Scenario {
        name: "paper-base".into(),
        topology: Topology::paper(),
        server_storage_bytes: 4 * GIB,
        server_query_capacity: 3_000.0,
        cheap_cost: 100.0,
        expensive_cost: 125.0,
        cheap_fraction: 0.7,
        apps: vec![
            ScenarioApp {
                replicas: 2,
                partitions: 200,
                initial_partition_bytes: 128 * MIB,
            },
            ScenarioApp {
                replicas: 3,
                partitions: 200,
                initial_partition_bytes: 128 * MIB,
            },
            ScenarioApp {
                replicas: 4,
                partitions: 200,
                initial_partition_bytes: 128 * MIB,
            },
        ],
        load_fractions: vec![1.0, 1.0, 1.0],
        trace: TraceKind::Constant(3_000.0),
        client_geo: ClientGeo::Uniform,
        inserts: None,
        schedule: Schedule::new(),
        epochs: 100,
        seed: 0xC0FFEE,
        config: SkuteConfig::paper(),
    }
}

/// Fig. 2 — the replication process at startup: the base scenario observed
/// long enough to watch the vnode population converge and expensive servers
/// end up hosting fewer vnodes than cheap ones.
pub fn fig2_scenario() -> Scenario {
    let mut s = base_scenario();
    s.name = "fig2-convergence".into();
    s.epochs = 120;
    s
}

/// Fig. 3 — server arrival and failure: 20 servers added at epoch 100, 20
/// different servers removed at epoch 200; the per-ring vnode totals stay
/// flat across the upgrade and dip-then-recover after the failure.
pub fn fig3_scenario() -> Scenario {
    let mut s = base_scenario();
    s.name = "fig3-elasticity".into();
    s.epochs = 300;
    s.schedule = Schedule::new()
        .at(100, CloudEvent::AddServers { count: 20 })
        .at(200, CloudEvent::RemoveServers { count: 20 });
    s
}

/// Fig. 4 — adaptation to the query load: the Slashdot spike (3000 →
/// 183 000 queries/epoch in 25 epochs, decaying back over 250), with the
/// three applications attracting 4/7, 2/7 and 1/7 of the total load.
pub fn fig4_scenario() -> Scenario {
    let mut s = base_scenario();
    s.name = "fig4-slashdot".into();
    s.epochs = 400;
    s.trace = TraceKind::Slashdot(SlashdotTrace::paper());
    s.load_fractions = vec![4.0, 2.0, 1.0];
    s
}

/// Fig. 5 — storage saturation: 2000 insert requests/epoch of 500 KB each,
/// Pareto(1, 50)-distributed, until the cloud runs out of space. Partitions
/// start small (32 MiB) so the fill is dominated by the insert stream; the
/// claim under test is *shape*: no insert failures until used capacity
/// reaches the high-90s percent. The 4 GiB servers keep the
/// partition-to-server size ratio (≤ 256 MiB on 4 GiB, ~6%) fine enough
/// for near-full rebalancing, mirroring the paper's many-partitions-per-
/// server regime.
pub fn fig5_scenario() -> Scenario {
    let mut s = base_scenario();
    s.name = "fig5-saturation".into();
    for app in &mut s.apps {
        app.initial_partition_bytes = 32 * MIB;
    }
    s.inserts = Some(InsertGenerator::paper());
    s.epochs = 300;
    s
}

/// Correlated-outage stress: the base scenario with **every** server of
/// the topology's first country failing in the same epoch (epoch 40) — a
/// tenth of the fleet, all in one diversity domain of eq. (2). Where the
/// Fig. 3 failure scatters 20 random losses across the cloud, this burst
/// concentrates them: partitions whose replica sets leaned on the
/// country's diversity lose several replicas at once, and the repair
/// pass absorbs the whole backlog under its per-epoch cap. The scenario
/// backs the fault-matrix determinism checks (`skute-sim outage`).
pub fn outage_scenario() -> Scenario {
    let mut s = base_scenario();
    s.name = "outage-burst".into();
    s.epochs = 80;
    let (continent, country) = s
        .topology
        .iter_countries()
        .next()
        .expect("the paper topology has countries");
    s.schedule = Schedule::new().at(40, CloudEvent::CountryOutage { continent, country });
    s
}

/// A scaled-down variant of the base scenario for tests and quick runs:
/// `partitions` per app, `queries_per_epoch` λ, same 2/3/4-replica SLAs,
/// smaller partitions (4 MiB), `epochs` epochs.
///
/// γ (the money-per-query calibration the paper leaves unspecified) is
/// rescaled so the *hottest* partition's income sits at the base
/// scenario's operating point. Partition popularity is Pareto(1, 50)
/// distributed, and for that heavy tail the top partition's share of an
/// app's load scales like 1/ln M — so at M = 16 instead of 200 the hottest
/// partition concentrates ≈ ln 200 / ln 16 ≈ 1.9× more income, enough to
/// cross the profit-replication hurdle that the full-size scenario never
/// reaches at base load (and a profitable surplus replica never builds the
/// negative streak it needs to suicide, so the vnode population would
/// converge above 9·M). The factor only ever shrinks γ: scenarios with
/// *more* partitions than the paper's get the paper's calibration as-is.
pub fn scaled_scenario(
    name: &str,
    partitions: usize,
    queries_per_epoch: u64,
    epochs: u64,
) -> Scenario {
    let mut s = base_scenario();
    s.name = name.into();
    let base_partitions = s.apps[0].partitions as f64;
    for app in &mut s.apps {
        app.partitions = partitions;
        app.initial_partition_bytes = 4 * MIB;
    }
    // Floor at 2: ln 1 = 0 would zero γ entirely, and a single partition is
    // maximally concentrated, so it gets the strongest (smallest) factor.
    let concentration = (partitions.max(2) as f64).ln() / base_partitions.ln();
    if concentration < 1.0 {
        s.config.economy.utility_per_query *= concentration;
    }
    s.trace = TraceKind::Constant(queries_per_epoch as f64);
    s.epochs = epochs;
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use skute_workload::LoadTrace;

    #[test]
    fn base_matches_paper_parameters() {
        let s = base_scenario();
        s.validate();
        assert_eq!(s.topology.server_count(), 200);
        assert_eq!(s.topology.country_count(), 10);
        assert_eq!(s.apps.len(), 3);
        assert_eq!(
            s.apps.iter().map(|a| a.replicas).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert!(s.apps.iter().all(|a| a.partitions == 200));
        assert_eq!(s.trace.rate(0), 3000.0);
        assert_eq!(s.cheap_cost, 100.0);
        assert_eq!(s.expensive_cost, 125.0);
    }

    #[test]
    fn fig3_schedule_matches_paper() {
        let s = fig3_scenario();
        assert_eq!(
            s.schedule.events_at(100),
            &[CloudEvent::AddServers { count: 20 }]
        );
        assert_eq!(
            s.schedule.events_at(200),
            &[CloudEvent::RemoveServers { count: 20 }]
        );
    }

    #[test]
    fn fig4_fractions_are_4_2_1() {
        let s = fig4_scenario();
        assert_eq!(s.load_fractions, vec![4.0, 2.0, 1.0]);
        assert_eq!(s.trace.rate(125), 183_000.0);
    }

    #[test]
    fn fig5_has_inserts() {
        let s = fig5_scenario();
        let gen = s.inserts.unwrap();
        assert_eq!(gen.rate_per_epoch, 2000.0);
        assert_eq!(gen.object_bytes, 500_000);
    }

    #[test]
    fn all_scenarios_validate() {
        for s in [
            base_scenario(),
            fig2_scenario(),
            fig3_scenario(),
            fig4_scenario(),
            fig5_scenario(),
            outage_scenario(),
        ] {
            s.validate();
        }
    }

    #[test]
    fn outage_scenario_targets_a_real_country() {
        let s = outage_scenario();
        let events = s.schedule.events_at(40);
        assert_eq!(events.len(), 1);
        let CloudEvent::CountryOutage { continent, country } = events[0] else {
            panic!("expected a country outage");
        };
        assert!(s
            .topology
            .iter_countries()
            .any(|(ct, co)| ct == continent && co == country));
    }
}
