//! # skute-sim
//!
//! The epoch-driven simulation harness behind every experiment in the paper
//! (§III): it assembles a [`skute_core::SkuteCloud`] from a declarative
//! [`Scenario`], drives it epoch by epoch with generated query/insert
//! traffic, applies scheduled server arrivals and failures, and records the
//! per-epoch time series that Figs. 2–5 plot.
//!
//! The canonical configurations live in [`paper`]:
//!
//! * [`paper::base_scenario`] — §III-A: 200 servers over 10 countries, three
//!   applications at 2/3/4 replicas, M = 200 partitions each, Pareto(1, 50)
//!   popularity, Poisson λ = 3000 queries/epoch, 70% of servers at $100 and
//!   30% at $125;
//! * [`paper::fig3_scenario`] — +20 servers at epoch 100, −20 at epoch 200;
//! * [`paper::fig4_scenario`] — the Slashdot spike with 4/7, 2/7, 1/7
//!   application load fractions;
//! * [`paper::fig5_scenario`] — 2000 × 500 KB inserts/epoch until the cloud
//!   saturates.

#![warn(missing_docs)]

pub mod engine;
pub mod events;
pub mod paper;
pub mod recorder;
pub mod scenario;

pub use engine::{Observation, Simulation};
pub use events::{CloudEvent, Schedule};
pub use recorder::Recorder;
pub use scenario::{Scenario, ScenarioApp, TraceKind};
