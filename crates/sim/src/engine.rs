//! The epoch-driven simulation engine.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use skute_cluster::{Capacities, Cluster, ServerSpec};
use skute_core::{AppId, AppSpec, EpochReport, LevelSpec, SkuteCloud, TrafficBatch};
use skute_geo::Location;
use skute_workload::{pareto_popularities, QueryGenerator};

use crate::events::CloudEvent;
use crate::scenario::{Scenario, TraceKind};

/// One epoch's observation: the cloud's report plus derived statistics that
/// need cluster context (the cheap/expensive split of Fig. 2).
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// The cloud's epoch report.
    pub report: EpochReport,
    /// Mean virtual nodes per alive cheap ($100) server.
    pub cheap_mean_vnodes: f64,
    /// Mean virtual nodes per alive expensive ($125) server.
    pub expensive_mean_vnodes: f64,
    /// Mean query rate the trace prescribed this epoch.
    pub offered_rate: f64,
}

/// Drives a [`SkuteCloud`] through a [`Scenario`], epoch by epoch.
pub struct Simulation {
    scenario: Scenario,
    cloud: SkuteCloud,
    apps: Vec<AppId>,
    query_gen: QueryGenerator<TraceKind>,
    rng: StdRng,
    added_servers: usize,
    insert_seq: u64,
}

impl Simulation {
    /// Builds the cloud described by `scenario`: commissions the cluster
    /// (70/30 cost split), registers the applications, and assigns
    /// Pareto(1, 50) popularity to every partition.
    ///
    /// # Panics
    /// Panics if the scenario is inconsistent (see [`Scenario::validate`]).
    pub fn new(scenario: Scenario) -> Self {
        scenario.validate();
        let mut rng = StdRng::seed_from_u64(scenario.seed ^ 0x51u64.wrapping_shl(32));
        let cluster = Cluster::from_topology(&scenario.topology, |i, location| ServerSpec {
            location,
            capacities: Capacities::paper(
                scenario.server_storage_bytes,
                scenario.server_query_capacity,
            ),
            monthly_cost: scenario.cost_of(i),
            confidence: 1.0,
        });
        let mut cloud = SkuteCloud::new(
            scenario.config.with_seed(scenario.seed),
            scenario.topology.clone(),
            cluster,
        );
        let mut apps = Vec::with_capacity(scenario.apps.len());
        for (i, app) in scenario.apps.iter().enumerate() {
            let id = cloud
                .create_application(
                    AppSpec::new(format!("app{i}")).level(
                        LevelSpec::new(app.replicas, app.partitions)
                            .with_initial_bytes(app.initial_partition_bytes),
                    ),
                )
                .expect("scenario cluster can seed every partition");
            let pops = pareto_popularities(&mut rng, app.partitions);
            cloud
                .assign_popularity(id, 0, |p| pops[p])
                .expect("level 0 exists");
            apps.push(id);
        }
        let query_gen = QueryGenerator::new(
            scenario.trace.clone(),
            &scenario.load_fractions,
            &scenario.client_geo,
            &scenario.topology,
        );
        Self {
            scenario,
            cloud,
            apps,
            query_gen,
            rng,
            added_servers: 0,
            insert_seq: 0,
        }
    }

    /// The underlying cloud (for ad-hoc inspection between steps).
    pub fn cloud(&self) -> &SkuteCloud {
        &self.cloud
    }

    /// Mutable access to the cloud (fault-injection tests).
    pub fn cloud_mut(&mut self) -> &mut SkuteCloud {
        &mut self.cloud
    }

    /// Attaches an observability sink to the cloud (see
    /// [`skute_core::CloudMetrics`]). Write-only: same-seed runs are
    /// bitwise identical with or without one attached.
    pub fn attach_metrics(&mut self, metrics: std::sync::Arc<skute_core::CloudMetrics>) {
        self.cloud.set_metrics(metrics);
    }

    /// Registered application ids, in scenario order.
    pub fn apps(&self) -> &[AppId] {
        &self.apps
    }

    /// The scenario being simulated.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Runs one epoch: lifecycle events → query traffic → inserts →
    /// decision process; returns the epoch's observation.
    pub fn step(&mut self) -> Observation {
        self.cloud.begin_epoch();
        let epoch = self.cloud.epoch();
        for event in self.scenario.schedule.events_at(epoch).to_vec() {
            self.apply_event(event);
        }
        // Queries: every application's traffic in one batched call, so the
        // per-ring delivery plan passes share a single pool dispatch.
        let traffic = self.query_gen.epoch(&mut self.rng, epoch);
        let offered_rate: f64 = traffic.iter().map(|t| t.queries).sum();
        let batches: Vec<TrafficBatch> = traffic
            .into_iter()
            .map(|t| TrafficBatch {
                app: self.apps[t.app_index],
                level: 0,
                queries: t.queries,
                regions: t.regions,
            })
            .collect();
        self.cloud
            .deliver_queries_multi(batches)
            .expect("registered apps");
        // Inserts (Fig. 5), spread round-robin over the applications.
        if let Some(gen) = self.scenario.inserts {
            let batch = gen.epoch(&mut self.rng, epoch);
            for req in batch {
                let app = self.apps[(self.insert_seq % self.apps.len() as u64) as usize];
                self.insert_seq += 1;
                // Failures are counted by the cloud (Fig. 5's metric).
                let _ = self.cloud.ingest_synthetic(app, 0, &req.key, req.bytes);
            }
        }
        let report = self.cloud.end_epoch();
        self.observe(report, offered_rate)
    }

    /// Runs the scenario to completion, returning every epoch's observation.
    pub fn run(&mut self) -> Vec<Observation> {
        let epochs = self.scenario.epochs;
        (0..epochs).map(|_| self.step()).collect()
    }

    fn apply_event(&mut self, event: CloudEvent) {
        match event {
            CloudEvent::AddServers { count } => {
                for _ in 0..count {
                    let idx = self.cloud.cluster().len();
                    let location = self.spawn_location();
                    let spec = ServerSpec {
                        location,
                        capacities: Capacities::paper(
                            self.scenario.server_storage_bytes,
                            self.scenario.server_query_capacity,
                        ),
                        monthly_cost: self.scenario.cost_of(idx),
                        confidence: 1.0,
                    };
                    self.cloud.add_server(spec);
                    self.added_servers += 1;
                }
            }
            CloudEvent::RemoveServers { count } => {
                let mut alive = self.cloud.cluster().alive_ids();
                alive.shuffle(&mut self.rng);
                for id in alive.into_iter().take(count) {
                    self.cloud.retire_server(id);
                }
            }
            CloudEvent::CountryOutage { continent, country } => {
                // Fully determined by the topology: every alive server in
                // the country fails, in ascending id order, consuming no
                // randomness (the RNG stream stays aligned with runs that
                // schedule no outage).
                let victims: Vec<_> = self
                    .cloud
                    .cluster()
                    .alive()
                    .filter(|s| s.location.continent == continent && s.location.country == country)
                    .map(|s| s.id)
                    .collect();
                for id in victims {
                    self.cloud.retire_server(id);
                }
            }
            CloudEvent::GrayFailures { seed } => {
                // RNG-free plan swap; gray modes derive from the plan's
                // own splitmix64 stream starting at the next epoch.
                self.cloud.set_fault_plan(skute_core::FaultPlan {
                    kind: skute_core::FaultPlanKind::Gray,
                    seed,
                });
            }
            CloudEvent::ContinentPartition { continent } => {
                self.cloud.force_continent_partition(Some(continent));
            }
            CloudEvent::PartitionHealed => {
                self.cloud.force_continent_partition(None);
            }
        }
    }

    /// Location for a newly added server: round-robin over the topology's
    /// countries, first rack of the first room of the first datacenter,
    /// with a server index beyond the original rack population so locations
    /// stay unique.
    fn spawn_location(&self) -> Location {
        let countries: Vec<(u16, u16)> = self.scenario.topology.iter_countries().collect();
        let (ct, co) = countries[self.added_servers % countries.len()];
        let wave = (self.added_servers / countries.len()) as u16;
        Location::new(ct, co, 0, 0, 0, 1000 + wave)
    }

    fn observe(&self, report: EpochReport, offered_rate: f64) -> Observation {
        let mut cheap_total = 0usize;
        let mut cheap_servers = 0usize;
        let mut expensive_total = 0usize;
        let mut expensive_servers = 0usize;
        for server in self.cloud.cluster().alive() {
            let vnodes = report
                .vnodes_per_server
                .get(&server.id)
                .copied()
                .unwrap_or(0);
            if server.monthly_cost <= self.scenario.cheap_cost {
                cheap_total += vnodes;
                cheap_servers += 1;
            } else {
                expensive_total += vnodes;
                expensive_servers += 1;
            }
        }
        Observation {
            report,
            cheap_mean_vnodes: if cheap_servers == 0 {
                0.0
            } else {
                cheap_total as f64 / cheap_servers as f64
            },
            expensive_mean_vnodes: if expensive_servers == 0 {
                0.0
            } else {
                expensive_total as f64 / expensive_servers as f64
            },
            offered_rate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    fn tiny() -> Scenario {
        paper::scaled_scenario("tiny", 8, 4, 40)
    }

    #[test]
    fn simulation_runs_and_reports() {
        let mut sim = Simulation::new(tiny());
        let obs = sim.step();
        assert_eq!(obs.report.epoch, 1);
        assert!(obs.report.total_vnodes() >= 3 * 8);
        assert!(obs.offered_rate > 0.0);
    }

    #[test]
    fn vnodes_converge_to_sla_targets() {
        let mut sim = Simulation::new(tiny());
        let mut last = None;
        for _ in 0..12 {
            last = Some(sim.step());
        }
        let report = last.unwrap().report;
        // Rings converge to ≈ k·M vnodes for k = 2, 3, 4.
        for (i, expect_k) in [2usize, 3, 4].iter().enumerate() {
            let ring = &report.rings[i];
            let per_partition = ring.vnodes as f64 / ring.partitions as f64;
            assert!(
                per_partition >= *expect_k as f64 * 0.95,
                "ring {i}: {per_partition} replicas/partition, want ≈ {expect_k}"
            );
            assert!(
                ring.sla_satisfied_frac > 0.9,
                "ring {i} satisfaction {}",
                ring.sla_satisfied_frac
            );
        }
    }

    #[test]
    fn removal_events_trigger_recovery() {
        let mut scenario = tiny();
        scenario.schedule =
            crate::Schedule::new().at(10, crate::CloudEvent::RemoveServers { count: 10 });
        scenario.epochs = 20;
        let mut sim = Simulation::new(scenario);
        let obs: Vec<Observation> = sim.run();
        assert_eq!(obs[9].report.alive_servers, 190);
        // After removal, repairs kick in and SLA satisfaction recovers.
        let last = &obs.last().unwrap().report;
        for ring in &last.rings {
            assert!(ring.sla_satisfied_frac > 0.9, "{}", ring.sla_satisfied_frac);
        }
    }

    #[test]
    fn addition_events_commission_servers() {
        let mut scenario = tiny();
        scenario.schedule =
            crate::Schedule::new().at(3, crate::CloudEvent::AddServers { count: 20 });
        scenario.epochs = 5;
        let mut sim = Simulation::new(scenario);
        let obs = sim.run();
        assert_eq!(obs[1].report.alive_servers, 200);
        assert_eq!(obs[4].report.alive_servers, 220);
    }

    #[test]
    fn deterministic_replay() {
        let series = |seed: u64| {
            let mut s = tiny();
            s.seed = seed;
            s.epochs = 6;
            let mut sim = Simulation::new(s);
            sim.run()
                .into_iter()
                .map(|o| (o.report.total_vnodes(), o.report.actions))
                .collect::<Vec<_>>()
        };
        assert_eq!(series(11), series(11));
    }

    #[test]
    fn cheap_servers_attract_more_vnodes_over_time() {
        let mut scenario = tiny();
        scenario.epochs = 30;
        let mut sim = Simulation::new(scenario);
        let obs = sim.run();
        let last = obs.last().unwrap();
        assert!(
            last.cheap_mean_vnodes >= last.expensive_mean_vnodes,
            "cheap {} vs expensive {}",
            last.cheap_mean_vnodes,
            last.expensive_mean_vnodes
        );
    }
}
