//! Declarative experiment descriptions.

use skute_core::SkuteConfig;
use skute_geo::{ClientGeo, Topology};
use skute_workload::{InsertGenerator, LoadTrace, PiecewiseTrace, SlashdotTrace};

use crate::events::Schedule;

/// A load trace selected by value (so scenarios stay `Clone`).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind {
    /// Constant mean rate.
    Constant(f64),
    /// The Fig. 4 Slashdot spike.
    Slashdot(SlashdotTrace),
    /// Piecewise-constant rate.
    Piecewise(PiecewiseTrace),
}

impl LoadTrace for TraceKind {
    fn rate(&self, epoch: u64) -> f64 {
        match self {
            TraceKind::Constant(r) => *r,
            TraceKind::Slashdot(t) => t.rate(epoch),
            TraceKind::Piecewise(t) => t.rate(epoch),
        }
    }
}

/// One application of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioApp {
    /// SLA replica count (the paper's apps use 2, 3, 4).
    pub replicas: usize,
    /// Initial partitions (the paper: M = 200).
    pub partitions: usize,
    /// Initial logical bytes per partition.
    pub initial_partition_bytes: u64,
}

/// A complete experiment description.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (used in CSV/figure output).
    pub name: String,
    /// Geographic layout of the cloud.
    pub topology: Topology,
    /// Storage per server, bytes.
    pub server_storage_bytes: u64,
    /// Query capacity per server, queries/epoch.
    pub server_query_capacity: f64,
    /// Monthly cost of the cheap server class (paper: $100).
    pub cheap_cost: f64,
    /// Monthly cost of the expensive server class (paper: $125).
    pub expensive_cost: f64,
    /// Fraction of servers in the cheap class (paper: 0.7).
    pub cheap_fraction: f64,
    /// The applications sharing the cloud.
    pub apps: Vec<ScenarioApp>,
    /// Fractions of the total query load attracted by each application
    /// (normalized; paper Fig. 4: 4/7, 2/7, 1/7).
    pub load_fractions: Vec<f64>,
    /// Mean total query rate over time.
    pub trace: TraceKind,
    /// Geographic distribution of query clients.
    pub client_geo: ClientGeo,
    /// Optional storage-saturation insert stream (Fig. 5).
    pub inserts: Option<InsertGenerator>,
    /// Scheduled server arrivals/failures.
    pub schedule: Schedule,
    /// Number of epochs to simulate.
    pub epochs: u64,
    /// RNG seed (drives workload sampling and the cloud's internal RNG).
    pub seed: u64,
    /// Core configuration.
    pub config: SkuteConfig,
}

impl Scenario {
    /// True when a server index falls in the cheap cost class. The pattern
    /// is deterministic (`i mod 10 < 10·cheap_fraction`), giving exactly the
    /// paper's 70/30 split on multiples of ten.
    pub fn is_cheap(&self, server_index: usize) -> bool {
        ((server_index % 10) as f64) < self.cheap_fraction * 10.0
    }

    /// Monthly cost of the `i`-th commissioned server.
    pub fn cost_of(&self, server_index: usize) -> f64 {
        if self.is_cheap(server_index) {
            self.cheap_cost
        } else {
            self.expensive_cost
        }
    }

    /// Validates cross-field consistency.
    ///
    /// # Panics
    /// Panics when the load fractions don't match the app count, no app is
    /// defined, or the config is invalid.
    pub fn validate(&self) {
        assert!(
            !self.apps.is_empty(),
            "a scenario needs at least one application"
        );
        assert_eq!(
            self.apps.len(),
            self.load_fractions.len(),
            "one load fraction per application"
        );
        assert!(
            self.cheap_fraction >= 0.0 && self.cheap_fraction <= 1.0,
            "cheap_fraction must be in [0, 1]"
        );
        self.config.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_kind_dispatch() {
        assert_eq!(TraceKind::Constant(5.0).rate(99), 5.0);
        let s = TraceKind::Slashdot(SlashdotTrace::paper());
        assert_eq!(s.rate(0), 3000.0);
        assert_eq!(s.rate(125), 183_000.0);
        let p = TraceKind::Piecewise(PiecewiseTrace::new(vec![(0, 1.0), (10, 2.0)]));
        assert_eq!(p.rate(10), 2.0);
    }

    #[test]
    fn cost_classes_split_70_30() {
        let s = crate::paper::base_scenario();
        let cheap = (0..200).filter(|&i| s.is_cheap(i)).count();
        assert_eq!(cheap, 140);
        assert_eq!(s.cost_of(0), 100.0);
        assert_eq!(s.cost_of(7), 125.0);
    }
}
