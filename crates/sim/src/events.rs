//! Scheduled lifecycle events: server arrivals and failures.

use std::collections::BTreeMap;

/// A lifecycle event applied at the start of a scheduled epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloudEvent {
    /// Commission `count` new servers (§III-C adds 20 at epoch 100). Costs
    /// and capacities follow the scenario's server template; locations are
    /// spread round-robin over the existing countries.
    AddServers {
        /// Number of servers to add.
        count: usize,
    },
    /// Retire `count` random alive servers (§III-C removes 20 at epoch
    /// 200). All their replicas are lost.
    RemoveServers {
        /// Number of servers to fail.
        count: usize,
    },
    /// Correlated outage: **every** alive server located in one country
    /// fails in the same epoch (a grid or backbone failure). Unlike
    /// [`CloudEvent::RemoveServers`] the victims are not sampled — the
    /// event is fully determined by the topology, consumes no randomness,
    /// and stresses exactly what eq. (2) prices: partitions whose replica
    /// sets leaned on that country's diversity lose several replicas at
    /// once.
    CountryOutage {
        /// Continent index of the failing country.
        continent: u16,
        /// Country index within the continent.
        country: u16,
    },
    /// Switches the cloud onto a gray fault plan seeded with `seed`:
    /// from the next epoch on, per-server gray modes (read-only, slow,
    /// partitioned) and a rotating continental cut are derived from the
    /// fault stream and priced into confidence. RNG-free — the plan swap
    /// consumes no scenario randomness.
    GrayFailures {
        /// Seed of the gray fault stream.
        seed: u64,
    },
    /// Severs one continent from the rest of the cloud from the next
    /// epoch on (overriding whatever cut the fault plan derives).
    /// RNG-free and fully determined by the topology.
    ContinentPartition {
        /// Continent index to cut off.
        continent: u16,
    },
    /// Heals any continental partition (forced or plan-derived); server
    /// confidences recover through the health EWMA over the following
    /// epochs.
    PartitionHealed,
}

/// An epoch-indexed schedule of [`CloudEvent`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    events: BTreeMap<u64, Vec<CloudEvent>>,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an event at `epoch` (events at the same epoch apply in
    /// insertion order).
    #[must_use]
    pub fn at(mut self, epoch: u64, event: CloudEvent) -> Self {
        self.events.entry(epoch).or_default().push(event);
        self
    }

    /// The events scheduled for `epoch`.
    pub fn events_at(&self, epoch: u64) -> &[CloudEvent] {
        self.events.get(&epoch).map(Vec::as_slice).unwrap_or(&[])
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_lookup() {
        let s = Schedule::new()
            .at(100, CloudEvent::AddServers { count: 20 })
            .at(200, CloudEvent::RemoveServers { count: 20 })
            .at(100, CloudEvent::RemoveServers { count: 1 })
            .at(
                300,
                CloudEvent::CountryOutage {
                    continent: 0,
                    country: 1,
                },
            );
        assert_eq!(s.len(), 4);
        assert_eq!(
            s.events_at(300),
            &[CloudEvent::CountryOutage {
                continent: 0,
                country: 1
            }]
        );
        assert_eq!(
            s.events_at(100),
            &[
                CloudEvent::AddServers { count: 20 },
                CloudEvent::RemoveServers { count: 1 }
            ]
        );
        assert_eq!(s.events_at(150), &[]);
        assert!(!s.is_empty());
        assert!(Schedule::new().is_empty());
    }
}
