//! Robustness to server failures and cluster elasticity (§III-C).

use skute::prelude::*;

fn scenario(epochs: u64) -> Scenario {
    skute::sim::paper::scaled_scenario("failures-it", 24, 3_000, epochs)
}

#[test]
fn sla_recovers_after_burst_failure() {
    let mut s = scenario(40);
    s.schedule = Schedule::new().at(20, CloudEvent::RemoveServers { count: 30 });
    let mut sim = Simulation::new(s);
    let obs = sim.run();
    assert_eq!(obs.last().unwrap().report.alive_servers, 170);
    let final_report = &obs.last().unwrap().report;
    for ring in &final_report.rings {
        assert!(
            ring.sla_satisfied_frac > 0.99,
            "{} not recovered: {}",
            ring.ring,
            ring.sla_satisfied_frac
        );
    }
}

#[test]
fn repeated_waves_of_failures() {
    let mut s = scenario(60);
    s.schedule = Schedule::new()
        .at(10, CloudEvent::RemoveServers { count: 15 })
        .at(25, CloudEvent::RemoveServers { count: 15 })
        .at(40, CloudEvent::RemoveServers { count: 15 });
    let mut sim = Simulation::new(s);
    let obs = sim.run();
    assert_eq!(obs.last().unwrap().report.alive_servers, 155);
    let final_report = &obs.last().unwrap().report;
    for ring in &final_report.rings {
        assert!(
            ring.sla_satisfied_frac > 0.95,
            "{}",
            ring.sla_satisfied_frac
        );
    }
    // No partition may have been fully lost: with ≥2 scattered replicas a
    // 15-server burst cannot take out a whole replica set reliably — and
    // repairs run between bursts.
    let lost: u64 = obs.iter().map(|o| o.report.partitions_lost).sum();
    assert_eq!(lost, 0, "no partition should lose every replica");
}

#[test]
fn growth_is_absorbed_without_rebalancing_storms() {
    let mut s = scenario(40);
    s.schedule = Schedule::new().at(10, CloudEvent::AddServers { count: 50 });
    let mut sim = Simulation::new(s);
    let obs = sim.run();
    assert_eq!(obs.last().unwrap().report.alive_servers, 250);
    // Adding capacity must not change replica totals (the SLA doesn't care)
    // and must not trigger mass churn.
    let before: usize = obs[8].report.total_vnodes();
    let after: usize = obs.last().unwrap().report.total_vnodes();
    assert_eq!(before, after, "upgrades must not inflate replica counts");
    let churn_after: u64 = obs[12..]
        .iter()
        .map(|o| o.report.actions.migrations + o.report.actions.suicides)
        .sum();
    assert!(
        churn_after < 200,
        "adding servers caused a rebalancing storm: {churn_after} moves"
    );
}

#[test]
fn failed_servers_replicas_land_on_survivors() {
    let mut s = scenario(30);
    s.schedule = Schedule::new().at(10, CloudEvent::RemoveServers { count: 20 });
    let mut sim = Simulation::new(s);
    for _ in 0..30 {
        sim.step();
    }
    let cloud = sim.cloud();
    let apps = sim.apps().to_vec();
    for (i, app) in apps.iter().enumerate() {
        for pid in cloud.partition_ids(*app, 0).unwrap() {
            for server in cloud.replica_servers(*app, 0, pid).unwrap() {
                assert!(
                    cloud.cluster().get_alive(server).is_some(),
                    "app {i}: partition {pid} references dead server {server}"
                );
            }
        }
    }
}

#[test]
fn reads_survive_minority_replica_failures() {
    let mut sim = Simulation::new(scenario(1));
    let app = sim.apps()[2]; // the 4-replica ring
    sim.cloud_mut().begin_epoch();
    sim.cloud_mut()
        .put(app, 0, b"durable", b"payload".to_vec())
        .unwrap();
    for _ in 0..8 {
        sim.cloud_mut().begin_epoch();
        sim.cloud_mut().end_epoch();
    }
    // Kill replicas one at a time; the value must remain readable while any
    // replica survives.
    let pid = {
        let ids = sim.cloud().partition_ids(app, 0).unwrap();
        // find the partition holding the key by probing each
        *ids.iter()
            .find(|&&pid| {
                sim.cloud()
                    .replica_footprints(app, 0, pid)
                    .map(|f| f.iter().any(|(_, bytes)| *bytes > 4 << 20))
                    .unwrap_or(false)
            })
            .unwrap_or(&ids[0])
    };
    for _ in 0..2 {
        let victim = sim.cloud().replica_servers(app, 0, pid).unwrap()[0];
        sim.cloud_mut().retire_server(victim);
        assert_eq!(
            sim.cloud_mut()
                .get(app, 0, b"durable")
                .unwrap()
                .unwrap()
                .as_ref(),
            b"payload"
        );
    }
}
