//! Robustness to server failures and cluster elasticity (§III-C).

use skute::prelude::*;

fn scenario(epochs: u64) -> Scenario {
    skute::sim::paper::scaled_scenario("failures-it", 24, 3_000, epochs)
}

#[test]
fn sla_recovers_after_burst_failure() {
    let mut s = scenario(40);
    s.schedule = Schedule::new().at(20, CloudEvent::RemoveServers { count: 30 });
    let mut sim = Simulation::new(s);
    let obs = sim.run();
    assert_eq!(obs.last().unwrap().report.alive_servers, 170);
    let final_report = &obs.last().unwrap().report;
    for ring in &final_report.rings {
        assert!(
            ring.sla_satisfied_frac > 0.99,
            "{} not recovered: {}",
            ring.ring,
            ring.sla_satisfied_frac
        );
    }
}

#[test]
fn repeated_waves_of_failures() {
    let mut s = scenario(60);
    s.schedule = Schedule::new()
        .at(10, CloudEvent::RemoveServers { count: 15 })
        .at(25, CloudEvent::RemoveServers { count: 15 })
        .at(40, CloudEvent::RemoveServers { count: 15 });
    let mut sim = Simulation::new(s);
    let obs = sim.run();
    assert_eq!(obs.last().unwrap().report.alive_servers, 155);
    let final_report = &obs.last().unwrap().report;
    for ring in &final_report.rings {
        assert!(
            ring.sla_satisfied_frac > 0.95,
            "{}",
            ring.sla_satisfied_frac
        );
    }
    // No partition may have been fully lost: with ≥2 scattered replicas a
    // 15-server burst cannot take out a whole replica set reliably — and
    // repairs run between bursts.
    let lost: u64 = obs.iter().map(|o| o.report.partitions_lost).sum();
    assert_eq!(lost, 0, "no partition should lose every replica");
}

#[test]
fn growth_is_absorbed_without_rebalancing_storms() {
    let mut s = scenario(40);
    s.schedule = Schedule::new().at(10, CloudEvent::AddServers { count: 50 });
    let mut sim = Simulation::new(s);
    let obs = sim.run();
    assert_eq!(obs.last().unwrap().report.alive_servers, 250);
    // Adding capacity must not change replica totals (the SLA doesn't care)
    // and must not trigger mass churn.
    let before: usize = obs[8].report.total_vnodes();
    let after: usize = obs.last().unwrap().report.total_vnodes();
    assert_eq!(before, after, "upgrades must not inflate replica counts");
    let churn_after: u64 = obs[12..]
        .iter()
        .map(|o| o.report.actions.migrations + o.report.actions.suicides)
        .sum();
    assert!(
        churn_after < 200,
        "adding servers caused a rebalancing storm: {churn_after} moves"
    );
}

#[test]
fn failed_servers_replicas_land_on_survivors() {
    let mut s = scenario(30);
    s.schedule = Schedule::new().at(10, CloudEvent::RemoveServers { count: 20 });
    let mut sim = Simulation::new(s);
    for _ in 0..30 {
        sim.step();
    }
    let cloud = sim.cloud();
    let apps = sim.apps().to_vec();
    for (i, app) in apps.iter().enumerate() {
        for pid in cloud.partition_ids(*app, 0).unwrap() {
            for server in cloud.replica_servers(*app, 0, pid).unwrap() {
                assert!(
                    cloud.cluster().get_alive(server).is_some(),
                    "app {i}: partition {pid} references dead server {server}"
                );
            }
        }
    }
}

/// The scaled scenario with a whole-country outage at `epoch`: every
/// server of the topology's first country (a tenth of the fleet, one
/// diversity domain of eq. 2) fails in the same epoch.
fn outage_scenario(epochs: u64, epoch: u64) -> Scenario {
    let mut s = scenario(epochs);
    let (continent, country) = s
        .topology
        .iter_countries()
        .next()
        .expect("the paper topology has countries");
    s.schedule = Schedule::new().at(epoch, CloudEvent::CountryOutage { continent, country });
    s
}

#[test]
fn country_outage_holds_the_availability_floor() {
    let s = outage_scenario(44, 20);
    let partitions: usize = s.apps.iter().map(|a| a.partitions).sum();
    let cap = (s.config.max_repairs_per_partition_per_epoch * partitions) as u64;
    let mut sim = Simulation::new(s);
    let obs = sim.run();
    // One country = a tenth of the 200-server fleet.
    assert_eq!(obs.last().unwrap().report.alive_servers, 180);
    // The availability floor: eq.-(3) placement maximizes geographic
    // diversity, so no replica set is confined to one country — even a
    // correlated whole-country burst must not destroy any partition's
    // last replica (no acknowledged write is ever lost).
    let lost: u64 = obs.iter().map(|o| o.report.partitions_lost).sum();
    assert_eq!(lost, 0, "a single-country outage must not lose partitions");
    // The repair pass absorbs the whole backlog without ever exceeding
    // its per-epoch budget.
    let mut repairs_total = 0u64;
    for o in &obs {
        let repairs = o.report.actions.availability_replications;
        assert!(
            repairs <= cap,
            "epoch {}: {repairs} repairs exceed the {cap} cap",
            o.report.epoch
        );
        repairs_total += repairs;
    }
    assert!(repairs_total > 0, "the burst must trigger repairs");
    // And the SLAs recover fully.
    for ring in &obs.last().unwrap().report.rings {
        assert!(
            ring.sla_satisfied_frac > 0.99,
            "{} not recovered: {}",
            ring.ring,
            ring.sla_satisfied_frac
        );
    }
}

#[test]
fn country_outage_recovery_is_thread_invariant() {
    // The recovery trajectory — failure burst, repair backlog, SLA
    // re-convergence — replays bitwise at any worker budget.
    let run = |threads: usize| {
        let mut s = outage_scenario(26, 12);
        s.config.threads = threads;
        Simulation::new(s).run()
    };
    let base = run(1);
    let wide = run(8);
    assert_eq!(base.len(), wide.len());
    for (a, b) in base.iter().zip(&wide) {
        assert_eq!(
            a, b,
            "epoch {} diverged across thread counts",
            a.report.epoch
        );
    }
}

#[test]
fn speculative_repair_matches_the_sequential_oracle() {
    // The repair prepass's acceptance bar: routing repairs through the
    // sequential walk (`sequential_repair`) must replay the speculative
    // plan/validate protocol's trajectory **bitwise** across the outage
    // burst, at several thread counts. The only permitted difference is
    // the spec hit/miss observability counters: the economic pass
    // speculates identically in both runs, but only the speculative
    // repair pass adds its own evaluations on top.
    let run = |sequential: bool, threads: usize| {
        let mut s = outage_scenario(26, 12);
        s.config.sequential_repair = sequential;
        s.config.threads = threads;
        Simulation::new(s).run()
    };
    let spec = run(false, 1);
    let mut honored = 0i64;
    let mut evaluated = 0i64;
    for threads in [1usize, 8] {
        let oracle = run(true, threads);
        assert_eq!(spec.len(), oracle.len());
        for (epoch, (a, b)) in spec.iter().zip(&oracle).enumerate() {
            let mut a = a.clone();
            let mut b = b.clone();
            honored += a.report.actions.spec_hits as i64 - b.report.actions.spec_hits as i64;
            evaluated += (a.report.actions.spec_hits + a.report.actions.spec_misses) as i64
                - (b.report.actions.spec_hits + b.report.actions.spec_misses) as i64;
            a.report.actions.spec_hits = 0;
            a.report.actions.spec_misses = 0;
            b.report.actions.spec_hits = 0;
            b.report.actions.spec_misses = 0;
            assert_eq!(
                a, b,
                "repair modes diverge at epoch {epoch}, threads {threads}"
            );
        }
    }
    assert!(
        evaluated > 0,
        "the outage must route repairs through the speculative prepass"
    );
    assert!(
        honored > 0,
        "the repair commit must honor validated speculations"
    );
}

#[test]
fn reads_survive_minority_replica_failures() {
    let mut sim = Simulation::new(scenario(1));
    let app = sim.apps()[2]; // the 4-replica ring
    sim.cloud_mut().begin_epoch();
    sim.cloud_mut()
        .put(app, 0, b"durable", b"payload".to_vec())
        .unwrap();
    for _ in 0..8 {
        sim.cloud_mut().begin_epoch();
        sim.cloud_mut().end_epoch();
    }
    // Kill replicas one at a time; the value must remain readable while any
    // replica survives.
    let pid = {
        let ids = sim.cloud().partition_ids(app, 0).unwrap();
        // find the partition holding the key by probing each
        *ids.iter()
            .find(|&&pid| {
                sim.cloud()
                    .replica_footprints(app, 0, pid)
                    .map(|f| f.iter().any(|(_, bytes)| *bytes > 4 << 20))
                    .unwrap_or(false)
            })
            .unwrap_or(&ids[0])
    };
    for _ in 0..2 {
        let victim = sim.cloud().replica_servers(app, 0, pid).unwrap()[0];
        sim.cloud_mut().retire_server(victim);
        assert_eq!(
            sim.cloud_mut()
                .get(app, 0, b"durable")
                .unwrap()
                .unwrap()
                .as_ref(),
            b"payload"
        );
    }
}
