//! End-to-end key-value behaviour of the facade crate: writes, reads,
//! deletes, overwrites and multi-application isolation across epochs,
//! replications, migrations and splits.

use skute::prelude::*;

fn paper_cloud() -> SkuteCloud {
    let topology = Topology::paper();
    let cluster = Cluster::from_topology(&topology, |i, location| ServerSpec {
        location,
        capacities: Capacities::paper(4 << 30, 3_000.0),
        monthly_cost: if i % 10 < 7 { 100.0 } else { 125.0 },
        confidence: 1.0,
    });
    SkuteCloud::new(SkuteConfig::paper(), topology, cluster)
}

#[test]
fn write_read_delete_lifecycle() {
    let mut cloud = paper_cloud();
    let app = cloud
        .create_application(AppSpec::new("kv").level(LevelSpec::new(3, 16)))
        .unwrap();
    cloud.begin_epoch();
    cloud.put(app, 0, b"k1", b"v1".to_vec()).unwrap();
    assert_eq!(cloud.get(app, 0, b"k1").unwrap().unwrap().as_ref(), b"v1");
    cloud.put(app, 0, b"k1", b"v2".to_vec()).unwrap();
    assert_eq!(cloud.get(app, 0, b"k1").unwrap().unwrap().as_ref(), b"v2");
    cloud.delete(app, 0, b"k1").unwrap();
    assert_eq!(cloud.get(app, 0, b"k1").unwrap(), None);
    // A write after the delete resurrects the key with the newer version.
    cloud.put(app, 0, b"k1", b"v3".to_vec()).unwrap();
    assert_eq!(cloud.get(app, 0, b"k1").unwrap().unwrap().as_ref(), b"v3");
}

#[test]
fn many_keys_survive_convergence() {
    let mut cloud = paper_cloud();
    let app = cloud
        .create_application(AppSpec::new("kv").level(LevelSpec::new(3, 32)))
        .unwrap();
    cloud.begin_epoch();
    for i in 0..500u32 {
        cloud
            .put(
                app,
                0,
                format!("key:{i}").as_bytes(),
                i.to_le_bytes().to_vec(),
            )
            .unwrap();
    }
    for _ in 0..10 {
        cloud.begin_epoch();
        cloud.end_epoch();
    }
    for i in 0..500u32 {
        let got = cloud
            .get(app, 0, format!("key:{i}").as_bytes())
            .unwrap()
            .unwrap_or_else(|| panic!("key:{i} missing after convergence"));
        assert_eq!(got.as_ref(), &i.to_le_bytes());
    }
}

#[test]
fn applications_are_isolated() {
    let mut cloud = paper_cloud();
    let a = cloud
        .create_application(AppSpec::new("a").level(LevelSpec::new(2, 8)))
        .unwrap();
    let b = cloud
        .create_application(AppSpec::new("b").level(LevelSpec::new(3, 8)))
        .unwrap();
    cloud.begin_epoch();
    cloud.put(a, 0, b"shared-key", b"from-a".to_vec()).unwrap();
    cloud.put(b, 0, b"shared-key", b"from-b".to_vec()).unwrap();
    assert_eq!(
        cloud.get(a, 0, b"shared-key").unwrap().unwrap().as_ref(),
        b"from-a"
    );
    assert_eq!(
        cloud.get(b, 0, b"shared-key").unwrap().unwrap().as_ref(),
        b"from-b"
    );
    cloud.delete(a, 0, b"shared-key").unwrap();
    assert_eq!(cloud.get(a, 0, b"shared-key").unwrap(), None);
    assert_eq!(
        cloud.get(b, 0, b"shared-key").unwrap().unwrap().as_ref(),
        b"from-b",
        "deleting in app a must not touch app b"
    );
}

#[test]
fn levels_of_one_application_are_distinct_namespaces() {
    let mut cloud = paper_cloud();
    let app = cloud
        .create_application(
            AppSpec::new("tiered")
                .level(LevelSpec::new(2, 8))
                .level(LevelSpec::new(4, 8)),
        )
        .unwrap();
    cloud.begin_epoch();
    cloud.put(app, 0, b"doc", b"cheap".to_vec()).unwrap();
    cloud.put(app, 1, b"doc", b"precious".to_vec()).unwrap();
    assert_eq!(
        cloud.get(app, 0, b"doc").unwrap().unwrap().as_ref(),
        b"cheap"
    );
    assert_eq!(
        cloud.get(app, 1, b"doc").unwrap().unwrap().as_ref(),
        b"precious"
    );
}

#[test]
fn data_survives_partition_splits() {
    let topology = Topology::paper();
    let cluster = Cluster::from_topology(&topology, |_, location| ServerSpec {
        location,
        capacities: Capacities::paper(4 << 30, 3_000.0),
        monthly_cost: 100.0,
        confidence: 1.0,
    });
    let mut config = SkuteConfig::paper();
    config.split_threshold_bytes = 2048; // force lots of splits
    let mut cloud = SkuteCloud::new(config, topology, cluster);
    let app = cloud
        .create_application(AppSpec::new("split").level(LevelSpec::new(2, 2)))
        .unwrap();
    cloud.begin_epoch();
    for i in 0..300u32 {
        cloud
            .put(app, 0, format!("s:{i}").as_bytes(), vec![7u8; 32])
            .unwrap();
    }
    let before = cloud.partition_ids(app, 0).unwrap().len();
    for _ in 0..4 {
        cloud.begin_epoch();
        cloud.end_epoch();
    }
    let after = cloud.partition_ids(app, 0).unwrap().len();
    assert!(
        after > before,
        "splits must have happened ({before} → {after})"
    );
    for i in 0..300u32 {
        let got = cloud.get(app, 0, format!("s:{i}").as_bytes()).unwrap();
        assert_eq!(got.unwrap().as_ref(), &vec![7u8; 32][..]);
    }
}

#[test]
fn errors_for_unknown_targets() {
    let mut cloud = paper_cloud();
    let app = cloud
        .create_application(AppSpec::new("kv").level(LevelSpec::new(2, 4)))
        .unwrap();
    assert!(matches!(
        cloud.put(AppId(42), 0, b"k", b"v".to_vec()),
        Err(CoreError::UnknownApp)
    ));
    assert!(matches!(
        cloud.put(app, 7, b"k", b"v".to_vec()),
        Err(CoreError::UnknownLevel)
    ));
    assert!(cloud.create_application(AppSpec::new("empty")).is_err());
}

#[test]
fn empty_value_and_large_key_roundtrip() {
    let mut cloud = paper_cloud();
    let app = cloud
        .create_application(AppSpec::new("kv").level(LevelSpec::new(2, 4)))
        .unwrap();
    cloud.begin_epoch();
    let long_key = vec![0xABu8; 512];
    cloud.put(app, 0, &long_key, Vec::new()).unwrap();
    let got = cloud.get(app, 0, &long_key).unwrap().unwrap();
    assert!(got.is_empty());
}
