//! Skute versus the baseline placement policies, plus property-based tests
//! over the cloud's public API.

use proptest::prelude::*;

use skute::baseline::{
    evaluate, CheapestPlacement, CtxFixture, EvaluationConfig, MaxSpreadPlacement, RandomPlacement,
    SuccessorPlacement,
};
use skute::core::placement::EconomicPlacement;
use skute::prelude::*;

fn quick_cfg(fixture: &CtxFixture, k: usize) -> EvaluationConfig {
    EvaluationConfig {
        partitions: 80,
        replicas: k,
        threshold: threshold_for_replicas(&fixture.topology, k, 0.2),
        failures: 20,
        trials: 10,
        seed: 0xFEED,
    }
}

#[test]
fn economic_dominates_the_availability_cost_frontier() {
    let fixture = CtxFixture::paper();
    for k in [2usize, 3, 4] {
        let cfg = quick_cfg(&fixture, k);
        let economic = evaluate(&mut EconomicPlacement, &fixture, &cfg);
        let spread = evaluate(&mut MaxSpreadPlacement::default(), &fixture, &cfg);
        let cheapest = evaluate(&mut CheapestPlacement::default(), &fixture, &cfg);
        let successor = evaluate(&mut SuccessorPlacement, &fixture, &cfg);
        let random = evaluate(&mut RandomPlacement::new(1), &fixture, &cfg);
        // Full SLA satisfaction at no more rent than the diversity-only
        // policy.
        assert!(economic.sla_satisfied_frac >= 0.99, "k={k}");
        assert!(economic.mean_rent <= spread.mean_rent + 1e-9, "k={k}");
        // Geography-blind policies are strictly worse on availability.
        assert!(
            economic.mean_availability > successor.mean_availability,
            "k={k}"
        );
        assert!(
            economic.mean_availability >= random.mean_availability,
            "k={k}"
        );
        // The cost-only corner can't hold the SLA at higher k.
        if k >= 3 {
            assert!(
                cheapest.sla_satisfied_frac < economic.sla_satisfied_frac,
                "k={k}"
            );
        }
        // Survival under correlated failures orders the same way.
        assert!(
            economic.surviving_sla_frac > successor.surviving_sla_frac,
            "k={k}"
        );
    }
}

#[test]
fn full_system_beats_static_placement_after_failures() {
    // Static max-spread placement is optimal at t = 0 but cannot react;
    // Skute repairs. After a burst both start equally spread, but only the
    // dynamic system restores the SLA.
    let mut scenario = skute::sim::paper::scaled_scenario("static-vs", 24, 3_000, 30);
    scenario.schedule = Schedule::new().at(10, CloudEvent::RemoveServers { count: 40 });
    let mut sim = Simulation::new(scenario);
    let obs = sim.run();
    let after_burst = &obs[10].report; // epoch 11, right after the failure
    let end = &obs.last().unwrap().report;
    let sla = |r: &skute::EpochReport| {
        r.rings.iter().map(|x| x.sla_satisfied_frac).sum::<f64>() / r.rings.len() as f64
    };
    assert!(sla(end) > 0.99, "dynamic system recovered: {}", sla(end));
    // A static system would stay at the post-burst level forever; verify
    // the burst actually dented availability at some point (otherwise the
    // comparison is vacuous — repairs may outrun the probe).
    let min_sla = obs
        .iter()
        .map(|o| sla(&o.report))
        .fold(f64::INFINITY, f64::min);
    assert!(min_sla <= sla(end) + 1e-12);
    let _ = after_burst;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop_cloud_survives_random_operation_sequences(
        seed in 0u64..1000,
        ops in proptest::collection::vec(0u8..5, 1..30),
    ) {
        let topology = Topology::builder()
            .continents(3)
            .countries_per_continent(2)
            .datacenters_per_country(2)
            .servers_per_rack(3)
            .build();
        let cluster = Cluster::from_topology(&topology, |i, location| ServerSpec {
            location,
            capacities: Capacities::paper(64 << 20, 500.0),
            monthly_cost: if i % 2 == 0 { 100.0 } else { 125.0 },
            confidence: 1.0,
        });
        let mut cloud = SkuteCloud::new(
            SkuteConfig::paper().with_seed(seed),
            topology.clone(),
            cluster,
        );
        let app = cloud
            .create_application(AppSpec::new("fuzz").level(LevelSpec::new(2, 4)))
            .unwrap();
        cloud.begin_epoch();
        let mut alive_left = cloud.cluster().alive_count();
        for (i, op) in ops.iter().enumerate() {
            match op {
                0 => {
                    let key = format!("k{i}");
                    let _ = cloud.put(app, 0, key.as_bytes(), vec![i as u8; 8]);
                }
                1 => {
                    let _ = cloud.get(app, 0, format!("k{}", i / 2).as_bytes());
                }
                2 => {
                    let _ = cloud.delete(app, 0, format!("k{}", i / 2).as_bytes());
                }
                3 => {
                    cloud.begin_epoch();
                    let report = cloud.end_epoch();
                    prop_assert!(report.storage_used <= report.storage_capacity);
                }
                _ => {
                    // Fail a server, but never the whole cluster.
                    if alive_left > 4 {
                        let victim = cloud.cluster().alive_ids()[i % alive_left];
                        cloud.retire_server(victim);
                        alive_left -= 1;
                    }
                }
            }
        }
        // Invariants after any sequence: every partition has ≥1 replica on
        // an alive server, and replica servers are unique per partition.
        for pid in cloud.partition_ids(app, 0).unwrap() {
            let servers = cloud.replica_servers(app, 0, pid).unwrap();
            prop_assert!(!servers.is_empty());
            let mut sorted = servers.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), servers.len());
            for s in servers {
                prop_assert!(cloud.cluster().get_alive(s).is_some());
            }
        }
    }

    #[test]
    fn prop_availability_reported_matches_recomputation(seed in 0u64..50) {
        let mut scenario = skute::sim::paper::scaled_scenario("prop-avail", 8, 500, 6);
        scenario.seed = seed;
        let mut sim = Simulation::new(scenario);
        let obs = sim.run();
        let report = &obs.last().unwrap().report;
        let cloud = sim.cloud();
        for (i, app) in sim.apps().iter().enumerate() {
            let mut availabilities = Vec::new();
            for pid in cloud.partition_ids(*app, 0).unwrap() {
                let placed: Vec<(Location, f64)> = cloud
                    .replica_servers(*app, 0, pid)
                    .unwrap()
                    .iter()
                    .map(|s| {
                        let srv = cloud.cluster().get(*s).unwrap();
                        (srv.location, srv.confidence)
                    })
                    .collect();
                availabilities.push(availability_of(&placed));
            }
            let mean = availabilities.iter().sum::<f64>() / availabilities.len() as f64;
            prop_assert!((mean - report.rings[i].mean_availability).abs() < 1e-6);
        }
    }
}
