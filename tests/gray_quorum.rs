//! Gray-failure and quorum-read integration: seeded gray fault plans
//! must change the trajectory (degraded servers are priced into eq. 2)
//! while staying bitwise invariant across thread counts and storage
//! backends, and a continental partition must never lose an acked write
//! — quorum reads resolve the divergence and read-repair converges it.

use skute::prelude::*;
use skute::sim::paper;

/// Patches the only fields allowed to differ between the mem oracle and
/// the LSM engine: replication/migration byte meters are measured from
/// real stores on LSM and synthetic on mem.
fn normalize_measured(obs: &mut [Observation]) {
    for o in obs {
        o.report.actions.measured_replicated_bytes = 0;
        o.report.actions.measured_migrated_bytes = 0;
    }
}

#[test]
fn gray_trajectories_replay_bitwise_across_threads_and_backends() {
    // Gray and partition plans feed per-server health samples into the
    // confidence EWMA, so they *do* move the trajectory relative to a
    // clean run — but the gray state is derived sequentially from
    // (plan, epoch) alone, so the faulted trajectory must be bitwise
    // identical across thread counts and storage backends.
    let run = |kind: Option<FaultPlanKind>, threads: usize, backend: BackendKind| {
        let mut s = paper::scaled_scenario("gray-det", 16, 2_500, 18);
        s.seed = 0x66A7;
        s.config.threads = threads;
        s.config.backend = backend;
        if let Some(kind) = kind {
            s.config.fault_plan = FaultPlan { kind, seed: 0x66A7 };
        }
        Simulation::new(s).run()
    };
    let clean = run(None, 1, BackendKind::Mem);
    for kind in [FaultPlanKind::Gray, FaultPlanKind::Partition] {
        let reference = run(Some(kind), 1, BackendKind::Mem);
        assert_ne!(
            reference, clean,
            "{kind:?} prices degraded servers into the economy"
        );
        for threads in [2usize, 8] {
            let parallel = run(Some(kind), threads, BackendKind::Mem);
            assert_eq!(reference.len(), parallel.len());
            for (epoch, (a, b)) in reference.iter().zip(&parallel).enumerate() {
                assert_eq!(
                    a, b,
                    "{kind:?} diverges at epoch {epoch}, threads {threads}"
                );
            }
        }
        let mut mem = reference.clone();
        let mut lsm = run(Some(kind), 1, BackendKind::Lsm);
        normalize_measured(&mut mem);
        normalize_measured(&mut lsm);
        assert_eq!(mem.len(), lsm.len());
        for (epoch, (a, b)) in mem.iter().zip(&lsm).enumerate() {
            assert_eq!(a, b, "{kind:?} diverges across backends at epoch {epoch}");
        }
    }
}

#[test]
fn gray_events_inject_and_heal_partitions_mid_run() {
    // The RNG-free schedule events: a forced continental cut shows up in
    // the cloud's gray state at the next epoch and heals on demand, and
    // the same scheduled events replay bitwise.
    let run = || {
        let mut s = paper::scaled_scenario("gray-events", 12, 2_000, 14);
        s.seed = 0xE7E7;
        s.schedule = Schedule::new()
            .at(4, CloudEvent::ContinentPartition { continent: 1 })
            .at(8, CloudEvent::PartitionHealed)
            .at(10, CloudEvent::GrayFailures { seed: 0xBEEF });
        Simulation::new(s)
    };
    let mut sim = run();
    let mut cut_seen = false;
    for epoch in 1..=14u64 {
        sim.step();
        let cut = sim.cloud().partitioned_continent();
        // Events apply after the epoch's begin, so the epoch-4 cut
        // surfaces at begin_epoch(5) and the epoch-8 heal lands at
        // begin_epoch(9). (Past epoch 10 the gray plan derives its own
        // rotating cut, so nothing is asserted there.)
        if (5..=8).contains(&epoch) {
            assert_eq!(cut, Some(1), "cut active at epoch {epoch}");
            cut_seen = true;
        }
        if epoch <= 4 || (9..=10).contains(&epoch) {
            assert_eq!(cut, None, "no forced cut outside epochs 5..=8");
        }
    }
    assert!(cut_seen);
    // Bitwise replay of the same schedule.
    let a = run().run();
    let b = run().run();
    assert_eq!(a, b);
}

#[test]
fn forced_partition_preserves_acked_writes_and_read_repair_converges() {
    let topology = Topology::paper();
    let cluster = Cluster::from_topology(&topology, |i, location| ServerSpec {
        location,
        capacities: Capacities::paper(4 << 30, 5_000.0),
        monthly_cost: if i % 10 < 7 { 100.0 } else { 125.0 },
        confidence: 1.0,
    });
    let mut cloud = SkuteCloud::new(SkuteConfig::paper(), topology, cluster);
    let app = cloud
        .create_application(AppSpec::new("kv").level(LevelSpec::new(3, 8)))
        .unwrap();
    for _ in 0..6 {
        cloud.begin_epoch();
        cloud.end_epoch();
    }
    cloud.begin_epoch();
    let keys: Vec<String> = (0..24).map(|i| format!("k-{i}")).collect();
    for k in &keys {
        cloud.put(app, 0, k.as_bytes(), b"v1".to_vec()).unwrap();
    }
    // Sever continent 0 from the next epoch on.
    cloud.force_continent_partition(Some(0));
    cloud.end_epoch();
    cloud.begin_epoch();
    assert_eq!(cloud.partitioned_continent(), Some(0));
    // Overwrite under the cut: replicas behind it miss the write, but
    // every acked put reached a write quorum of healthy replicas.
    let mut acked = Vec::new();
    for k in &keys {
        if cloud.put(app, 0, k.as_bytes(), b"v2".to_vec()).is_ok() {
            acked.push(k.clone());
        }
    }
    assert!(!acked.is_empty(), "a majority-side quorum keeps acking");
    // Heal the cut.
    cloud.force_continent_partition(None);
    cloud.end_epoch();
    cloud.begin_epoch();
    assert_eq!(cloud.partitioned_continent(), None);
    // Read as a client *inside* the formerly cut continent, so eq.-(4)
    // proximity pulls the stale replicas into every quorum read set.
    let client = Some(Location::client_in_country(0, 0));
    let mut total_scheduled = 0usize;
    let mut rounds = 0;
    loop {
        let mut scheduled = 0usize;
        for k in &acked {
            let read = cloud
                .client_get_with(app, 0, k.as_bytes(), client, ReadConsistency::Quorum)
                .unwrap();
            assert_eq!(
                read.value.as_ref().unwrap().as_ref(),
                b"v2",
                "acked write for {k} survived the partition"
            );
            scheduled += read.repairs_scheduled;
        }
        total_scheduled += scheduled;
        cloud.end_epoch();
        cloud.begin_epoch();
        if scheduled == 0 {
            break;
        }
        rounds += 1;
        assert!(rounds < 8, "read-repair failed to converge");
    }
    assert!(
        total_scheduled > 0,
        "the healed quorum reads observed the divergence"
    );
    cloud.end_epoch();
}
