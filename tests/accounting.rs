//! Resource-accounting invariants of the cloud.
//!
//! The virtual economy only works if the meters it prices from are exact:
//! every byte a replica occupies must be charged to exactly one server, and
//! every replica of a partition must sit on a distinct server. These tests
//! drive the cloud through writes, synthetic ingest, epochs, failures and
//! splits, and re-derive the cluster's storage from first principles after
//! every phase.

use skute::prelude::*;

fn build_cloud(seed: u64) -> (SkuteCloud, Vec<AppId>) {
    let topology = Topology::paper();
    let cluster = Cluster::from_topology(&topology, |i, location| ServerSpec {
        location,
        capacities: Capacities::paper(512 << 20, 3_000.0),
        monthly_cost: if i % 10 < 7 { 100.0 } else { 125.0 },
        confidence: 1.0,
    });
    let mut config = SkuteConfig::paper().with_seed(seed);
    config.split_threshold_bytes = 8 << 20;
    let mut cloud = SkuteCloud::new(config, topology, cluster);
    let apps = (0..3u32)
        .map(|i| {
            cloud
                .create_application(
                    AppSpec::new(format!("app{i}"))
                        .level(LevelSpec::new(2 + i as usize, 8).with_initial_bytes(1 << 20)),
                )
                .unwrap()
        })
        .collect();
    (cloud, apps)
}

/// Re-derives per-server storage from the partition tables and compares it
/// with the cluster's meters, and checks replica-placement sanity.
fn assert_invariants(cloud: &SkuteCloud, apps: &[AppId]) {
    let mut derived: std::collections::HashMap<ServerId, u64> = Default::default();
    for (i, app) in apps.iter().enumerate() {
        let levels = cloud.applications()[i].levels.len();
        for level in 0..levels as u32 {
            for pid in cloud.partition_ids(*app, level).unwrap() {
                let footprints = cloud.replica_footprints(*app, level, pid).unwrap();
                assert!(
                    !footprints.is_empty(),
                    "{app} level {level} partition {pid} has no replicas"
                );
                // Replica servers must be distinct and alive.
                let mut servers: Vec<ServerId> = footprints.iter().map(|(s, _)| *s).collect();
                servers.sort();
                let len = servers.len();
                servers.dedup();
                assert_eq!(servers.len(), len, "duplicate replica servers for {pid}");
                for (server, bytes) in footprints {
                    assert!(
                        cloud.cluster().get_alive(server).is_some(),
                        "replica of {pid} on dead server {server}"
                    );
                    *derived.entry(server).or_insert(0) += bytes;
                }
            }
        }
    }
    for server in cloud.cluster().alive() {
        let expect = derived.get(&server.id).copied().unwrap_or(0);
        assert_eq!(
            server.usage.storage_used, expect,
            "server {} meter {} != derived {}",
            server.id, server.usage.storage_used, expect
        );
    }
}

#[test]
fn storage_accounting_exact_through_convergence() {
    let (mut cloud, apps) = build_cloud(1);
    assert_invariants(&cloud, &apps);
    for _ in 0..8 {
        cloud.begin_epoch();
        cloud.end_epoch();
        assert_invariants(&cloud, &apps);
    }
}

#[test]
fn storage_accounting_exact_through_writes_and_ingest() {
    let (mut cloud, apps) = build_cloud(2);
    for round in 0..5 {
        cloud.begin_epoch();
        for i in 0..50u32 {
            let key = format!("w:{round}:{i}");
            cloud
                .put(apps[0], 0, key.as_bytes(), vec![0u8; 100])
                .unwrap();
            let _ = cloud.ingest_synthetic(apps[1], 0, key.as_bytes(), 200 * 1024);
        }
        cloud.end_epoch();
        assert_invariants(&cloud, &apps);
    }
}

#[test]
fn storage_accounting_exact_through_overwrites_and_deletes() {
    let (mut cloud, apps) = build_cloud(3);
    cloud.begin_epoch();
    for i in 0..40u32 {
        let key = format!("k:{i}");
        cloud
            .put(apps[0], 0, key.as_bytes(), vec![1u8; 64])
            .unwrap();
        // Overwrite bigger, then smaller, then delete some.
        cloud
            .put(apps[0], 0, key.as_bytes(), vec![2u8; 256])
            .unwrap();
        cloud
            .put(apps[0], 0, key.as_bytes(), vec![3u8; 16])
            .unwrap();
        if i % 3 == 0 {
            cloud.delete(apps[0], 0, key.as_bytes()).unwrap();
        }
    }
    cloud.end_epoch();
    assert_invariants(&cloud, &apps);
}

#[test]
fn storage_accounting_exact_through_failures() {
    let (mut cloud, apps) = build_cloud(4);
    for _ in 0..6 {
        cloud.begin_epoch();
        cloud.end_epoch();
    }
    // Kill a server that actually hosts replicas.
    let victim = cloud
        .replica_servers(apps[2], 0, cloud.partition_ids(apps[2], 0).unwrap()[0])
        .unwrap()[0];
    cloud.begin_epoch();
    cloud.retire_server(victim);
    cloud.end_epoch();
    assert_invariants(&cloud, &apps);
    // Repairs on following epochs keep the books straight too.
    for _ in 0..4 {
        cloud.begin_epoch();
        cloud.end_epoch();
        assert_invariants(&cloud, &apps);
    }
}

#[test]
fn storage_accounting_exact_through_splits() {
    let (mut cloud, apps) = build_cloud(5);
    cloud.begin_epoch();
    // Pump one ring hard enough to split several partitions (8 MiB cap).
    for i in 0..200u32 {
        let key = format!("fat:{i}");
        cloud
            .ingest_synthetic(apps[0], 0, key.as_bytes(), 300 * 1024)
            .unwrap();
    }
    let report = cloud.end_epoch();
    assert!(report.actions.splits > 0, "splits must trigger");
    assert_invariants(&cloud, &apps);
}

#[test]
fn transferred_bytes_match_action_counts() {
    let (mut cloud, apps) = build_cloud(6);
    let mut total_repl_bytes = 0;
    let mut total_repl_count = 0;
    for _ in 0..6 {
        cloud.begin_epoch();
        let r = cloud.end_epoch();
        total_repl_bytes += r.actions.replicated_bytes;
        total_repl_count += r.actions.replications();
        // bytes are reported iff transfers happened
        assert_eq!(
            r.actions.replicated_bytes > 0,
            r.actions.replications() > 0,
            "replicated bytes and counts must agree"
        );
    }
    assert!(total_repl_count > 0, "bootstrap must replicate");
    assert!(total_repl_bytes > 0);
    let _ = apps;
}
