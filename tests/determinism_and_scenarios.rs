//! Deterministic replay and qualitative shape of every paper scenario at
//! reduced scale — cheap versions of the figure benches that run in the
//! regular test suite.

use skute::prelude::*;
use skute::sim::paper;

fn fingerprint(obs: &[Observation]) -> Vec<(usize, u64, u64, String)> {
    obs.iter()
        .map(|o| {
            let r = &o.report;
            (
                r.total_vnodes(),
                r.actions.replications(),
                r.actions.migrations,
                format!("{:.6}", r.rent_paid),
            )
        })
        .collect()
}

#[test]
fn identical_seeds_replay_identically() {
    let run = |seed| {
        let mut s = paper::scaled_scenario("det", 16, 2_000, 12);
        s.seed = seed;
        s.schedule = Schedule::new().at(6, CloudEvent::RemoveServers { count: 10 });
        fingerprint(&Simulation::new(s).run())
    };
    assert_eq!(run(1), run(1));
    assert_eq!(run(2), run(2));
    assert_ne!(run(1), run(2));
}

#[test]
fn identical_seeds_produce_identical_observation_series() {
    // Stronger than the fingerprint test above: every field of every
    // per-epoch `Observation` (reports, per-ring stats, cheap/expensive
    // means, offered rates) must match exactly — bitwise-equal floats —
    // across two independently constructed runs of the same scenario.
    let run = || {
        let mut s = paper::scaled_scenario("obs-det", 8, 1_500, 20);
        s.seed = 7;
        s.schedule = Schedule::new().at(9, CloudEvent::RemoveServers { count: 5 });
        Simulation::new(s).run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), b.len());
    for (epoch, (oa, ob)) in a.iter().zip(&b).enumerate() {
        assert_eq!(oa, ob, "observations diverge at epoch {epoch}");
    }
}

#[test]
fn identical_seeds_are_bitwise_identical_at_paper_scale() {
    // The M = 200 acceptance scenario of the epoch-loop optimization: the
    // full paper-scale partition count must replay bitwise-identically
    // (every float of every Observation) across two independent runs of
    // the rent-indexed decision pipeline.
    let run = || {
        let mut s = paper::scaled_scenario("det-200", 200, 3_000, 8);
        s.seed = 0xD200;
        Simulation::new(s).run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), b.len());
    for (epoch, (oa, ob)) in a.iter().zip(&b).enumerate() {
        assert_eq!(oa, ob, "observations diverge at epoch {epoch}");
    }
}

#[test]
fn thread_counts_replay_bitwise_identically() {
    // The parallel epoch pipeline's acceptance bar: threads = 1 runs every
    // phase inline (the sequential path); larger budgets fan the plan
    // passes out across workers. Every field of every per-epoch
    // Observation — floats included — must be bitwise identical, through
    // traffic, repairs, economic decisions and a failure burst.
    let run = |threads: usize| {
        let mut s = paper::scaled_scenario("threads-det", 16, 2_500, 14);
        s.seed = 0x7EAD;
        s.config.threads = threads;
        s.schedule = Schedule::new().at(7, CloudEvent::RemoveServers { count: 8 });
        Simulation::new(s).run()
    };
    let sequential = run(1);
    for threads in [2usize, 8] {
        let parallel = run(threads);
        assert_eq!(sequential.len(), parallel.len());
        for (epoch, (a, b)) in sequential.iter().zip(&parallel).enumerate() {
            assert_eq!(a, b, "threads = {threads} diverges at epoch {epoch}");
        }
    }
}

#[test]
fn thread_counts_replay_bitwise_identically_at_paper_scale() {
    // Same bar at the paper's M = 200 (600 partitions across three rings):
    // the chunked plan passes, sharded report accounting and speculative
    // placement must leave no trace in the trajectory.
    let run = |threads: usize| {
        let mut s = paper::scaled_scenario("threads-det-200", 200, 3_000, 6);
        s.seed = 0xD200;
        s.config.threads = threads;
        Simulation::new(s).run()
    };
    let sequential = run(1);
    for threads in [2usize, 8] {
        let parallel = run(threads);
        for (epoch, (a, b)) in sequential.iter().zip(&parallel).enumerate() {
            assert_eq!(a, b, "threads = {threads} diverges at epoch {epoch}");
        }
    }
}

#[test]
fn indexed_and_brute_force_placement_produce_identical_trajectories() {
    // End-to-end equivalence oracle: routing every eq.-(3) decision through
    // the brute-force full-cluster scan must reproduce the indexed
    // pipeline's Observation series exactly — same winners, same
    // tie-breaks, same floats — across a scenario with traffic, repairs
    // and a failure burst. The only permitted difference is the hit/miss
    // observability counters: brute-force mode disables the speculative
    // decision and repair passes entirely, so it evaluates no
    // speculations and both counters stay zero.
    let run = |brute: bool| {
        let mut s = paper::scaled_scenario("oracle-eq", 24, 3_000, 15);
        s.seed = 0x0514CE;
        s.config.brute_force_placement = brute;
        s.schedule = Schedule::new().at(8, CloudEvent::RemoveServers { count: 12 });
        Simulation::new(s).run()
    };
    let indexed = run(false);
    let brute = run(true);
    assert_eq!(indexed.len(), brute.len());
    for (epoch, (oi, ob)) in indexed.iter().zip(&brute).enumerate() {
        let mut oi = oi.clone();
        let mut ob = ob.clone();
        oi.report.actions.spec_hits = 0;
        oi.report.actions.spec_misses = 0;
        ob.report.actions.spec_hits = 0;
        ob.report.actions.spec_misses = 0;
        assert_eq!(oi, ob, "trajectories diverge at epoch {epoch}");
    }
}

#[test]
fn traffic_commit_modes_conserve_per_server_queries_on_all_scenarios() {
    // The sharded traffic commit's acceptance bar: on every paper scenario
    // the parallel commit (planned spill-free deliveries + sequential
    // reconciliation) must be **bitwise identical** to the sequential
    // oracle (`SkuteConfig::sequential_traffic_commit`) — every float of
    // every Observation *and* every server's served/dropped query meters,
    // epoch by epoch. Bitwise equality subsumes conservation: the total
    // delivered and spilled queries per server per epoch match exactly.
    for scenario in [
        paper::base_scenario(),
        paper::fig2_scenario(),
        paper::fig3_scenario(),
        paper::fig4_scenario(),
        paper::fig5_scenario(),
    ] {
        let run = |sequential: bool| {
            let mut s = scenario.clone();
            s.epochs = 15;
            s.config.sequential_traffic_commit = sequential;
            let mut sim = Simulation::new(s);
            let mut out = Vec::new();
            for _ in 0..15 {
                let obs = sim.step();
                let meters: Vec<(ServerId, u64, u64)> = sim
                    .cloud()
                    .cluster()
                    .alive()
                    .map(|srv| {
                        (
                            srv.id,
                            srv.usage.queries_served.to_bits(),
                            srv.usage.queries_dropped.to_bits(),
                        )
                    })
                    .collect();
                out.push((obs, meters));
            }
            out
        };
        let parallel = run(false);
        let sequential = run(true);
        assert_eq!(parallel.len(), sequential.len());
        for (epoch, (p, s)) in parallel.iter().zip(&sequential).enumerate() {
            assert_eq!(
                p, s,
                "commit modes diverge on {} at epoch {epoch}",
                scenario.name
            );
        }
    }
}

#[test]
fn sequential_commit_mode_replays_bitwise_across_thread_counts() {
    // The oracle mode gets the same thread-invariance bar as the default:
    // routing the commit through the sequential loop must not reintroduce
    // any thread-count dependence in the (still parallel) plan passes.
    let run = |threads: usize| {
        let mut s = paper::scaled_scenario("seq-commit-threads", 16, 2_500, 10);
        s.seed = 0x5EC0;
        s.config.threads = threads;
        s.config.sequential_traffic_commit = true;
        Simulation::new(s).run()
    };
    let sequential = run(1);
    for threads in [2usize, 8] {
        let parallel = run(threads);
        for (epoch, (a, b)) in sequential.iter().zip(&parallel).enumerate() {
            assert_eq!(a, b, "threads = {threads} diverges at epoch {epoch}");
        }
    }
}

#[test]
fn speculation_oracle_replays_bitwise_identically() {
    // The read-set speculation's acceptance bar: disabling speculation
    // entirely (`SkuteConfig::no_speculation` — every acting vnode
    // re-walks the live state at commit) must replay the speculative
    // pipeline's trajectory **bitwise**, across a convergence phase, a
    // failure burst and steady state, at several thread counts. The only
    // permitted difference is the hit/miss observability counters
    // themselves (the oracle never evaluates a speculation).
    let run = |no_spec: bool, threads: usize| {
        let mut s = paper::scaled_scenario("spec-oracle", 24, 3_000, 16);
        s.seed = 0x57EC;
        s.config.no_speculation = no_spec;
        s.config.threads = threads;
        s.schedule = Schedule::new().at(9, CloudEvent::RemoveServers { count: 12 });
        Simulation::new(s).run()
    };
    let spec = run(false, 1);
    let mut honored = 0u64;
    let mut re_walked = 0u64;
    for threads in [1usize, 2, 8] {
        let oracle = run(true, threads);
        assert_eq!(spec.len(), oracle.len());
        for (epoch, (a, b)) in spec.iter().zip(&oracle).enumerate() {
            let mut a = a.clone();
            honored += a.report.actions.spec_hits;
            re_walked += a.report.actions.spec_misses;
            a.report.actions.spec_hits = 0;
            a.report.actions.spec_misses = 0;
            assert_eq!(
                b.report.actions.spec_hits, 0,
                "the oracle evaluates no speculation"
            );
            assert_eq!(b.report.actions.spec_misses, 0);
            assert_eq!(
                &a, b,
                "speculation on/off diverges at epoch {epoch}, threads {threads}"
            );
        }
    }
    assert!(
        honored > 0,
        "the convergence epochs must honor speculations past the first commit"
    );
    let _ = re_walked; // conflicts are workload-dependent; only hits are asserted
}

#[test]
fn sequential_decisions_oracle_replays_bitwise_identically() {
    // The batched decision commit's acceptance bar: routing the commit
    // through the one-action-at-a-time sequential walk
    // (`SkuteConfig::sequential_decisions`) must replay the batched
    // pipeline's trajectory **bitwise** — across a convergence phase, a
    // failure burst and steady state, at several thread counts. The only
    // permitted difference is the batch observability counters themselves
    // (the oracle builds no batches). Random conflict interleavings get
    // the same bar from the failure burst: the post-outage epochs are
    // dense with overlapping suicides/migrations, so both flush triggers
    // (partition reuse and the in-place server-conflict fallback) are
    // exercised against the sequential walk.
    let run = |sequential: bool, threads: usize| {
        let mut s = paper::scaled_scenario("seq-decisions-oracle", 24, 3_000, 16);
        s.seed = 0xBA7C;
        s.config.sequential_decisions = sequential;
        s.config.threads = threads;
        s.schedule = Schedule::new().at(9, CloudEvent::RemoveServers { count: 12 });
        Simulation::new(s).run()
    };
    let batched = run(false, 1);
    let mut batches = 0u64;
    let mut widest = 0u64;
    for threads in [1usize, 2, 8] {
        let oracle = run(true, threads);
        assert_eq!(batched.len(), oracle.len());
        for (epoch, (a, b)) in batched.iter().zip(&oracle).enumerate() {
            let mut a = a.clone();
            batches += a.report.actions.decision_batches;
            widest = widest.max(a.report.actions.max_batch_width);
            a.report.actions.decision_batches = 0;
            a.report.actions.max_batch_width = 0;
            a.report.actions.batch_conflicts = 0;
            assert_eq!(
                b.report.actions.decision_batches, 0,
                "the oracle builds no batches"
            );
            assert_eq!(b.report.actions.max_batch_width, 0);
            assert_eq!(b.report.actions.batch_conflicts, 0);
            assert_eq!(
                &a, b,
                "batched vs sequential decisions diverge at epoch {epoch}, threads {threads}"
            );
        }
    }
    assert!(batches > 0, "the default mode must commit through batches");
    assert!(widest > 1, "the workload must co-batch disjoint actions");
}

#[test]
fn fig2_shape_scaled() {
    // Convergence: vnodes reach 9·M and stay; cheap servers outnumber
    // expensive in hosted vnodes.
    let mut sim = Simulation::new(paper::scaled_scenario("fig2-it", 16, 3_000, 25));
    let obs = sim.run();
    let last = obs.last().unwrap();
    assert_eq!(last.report.total_vnodes(), (2 + 3 + 4) * 16);
    assert!(last.cheap_mean_vnodes > last.expensive_mean_vnodes);
    // Stability: no availability repairs in the last five epochs.
    let late_repairs: u64 = obs[20..]
        .iter()
        .map(|o| o.report.actions.availability_replications)
        .sum();
    assert_eq!(late_repairs, 0);
}

#[test]
fn fig3_shape_scaled() {
    let mut s = paper::scaled_scenario("fig3-it", 16, 3_000, 45);
    s.schedule = Schedule::new()
        .at(15, CloudEvent::AddServers { count: 20 })
        .at(30, CloudEvent::RemoveServers { count: 20 });
    let mut sim = Simulation::new(s);
    let obs = sim.run();
    let totals: Vec<usize> = obs.iter().map(|o| o.report.total_vnodes()).collect();
    // Flat across the upgrade…
    assert_eq!(totals[14], totals[25]);
    // …and recovered after the failure.
    assert!(*totals.last().unwrap() >= totals[28]);
    for ring in &obs.last().unwrap().report.rings {
        assert!(ring.sla_satisfied_frac > 0.99);
    }
}

#[test]
fn fig4_shape_scaled() {
    let mut s = paper::scaled_scenario("fig4-it", 16, 3_000, 60);
    s.trace = TraceKind::Slashdot(SlashdotTrace {
        base: 3_000.0,
        peak: 60_000.0,
        spike_start: 15,
        ramp_epochs: 5,
        decay_epochs: 30,
    });
    s.load_fractions = vec![4.0, 2.0, 1.0];
    let mut sim = Simulation::new(s);
    let obs = sim.run();
    // Load per server follows the spike.
    let base_load = obs[10].report.rings[0].load_per_server;
    let peak_load = obs
        .iter()
        .map(|o| o.report.rings[0].load_per_server)
        .fold(0.0, f64::max);
    assert!(peak_load > 10.0 * base_load, "{peak_load} vs {base_load}");
    // Shares at the peak follow 4/7, 2/7, 1/7.
    let peak = obs
        .iter()
        .max_by(|a, b| a.offered_rate.total_cmp(&b.offered_rate))
        .unwrap();
    let served: Vec<f64> = peak.report.rings.iter().map(|r| r.queries_served).collect();
    let total: f64 = served.iter().sum();
    assert!((served[0] / total - 4.0 / 7.0).abs() < 0.05);
    assert!((served[2] / total - 1.0 / 7.0).abs() < 0.05);
    // Nearly nothing dropped.
    let dropped: f64 = obs
        .iter()
        .flat_map(|o| o.report.rings.iter().map(|r| r.queries_dropped))
        .sum();
    let offered: f64 = obs.iter().map(|o| o.offered_rate).sum();
    assert!(
        dropped / offered < 0.01,
        "dropped {:.3}%",
        100.0 * dropped / offered
    );
}

#[test]
fn fig5_shape_scaled() {
    let mut s = paper::scaled_scenario("fig5-it", 12, 1_000, 60);
    s.server_storage_bytes = 512 << 20;
    s.config.split_threshold_bytes = 16 << 20;
    s.inserts = Some(InsertGenerator {
        rate_per_epoch: 300.0,
        object_bytes: 500 * 1000,
        key_dist: Pareto::paper(),
        unique_key_factor: 1000,
    });
    let mut sim = Simulation::new(s);
    let obs = sim.run();
    // No failures while the cloud is comfortably below 60% used.
    for o in &obs {
        if o.report.storage_frac() < 0.6 {
            assert_eq!(
                o.report.insert_failures,
                0,
                "failure at {:.1}% used",
                100.0 * o.report.storage_frac()
            );
        }
    }
    // The stream keeps landing: storage grows monotonically until late.
    let first = obs[0].report.storage_frac();
    let last = obs.last().unwrap().report.storage_frac();
    assert!(last > first + 0.2, "{first} → {last}");
}

#[test]
fn paper_scenarios_all_validate_and_build() {
    for scenario in [
        paper::base_scenario(),
        paper::fig2_scenario(),
        paper::fig3_scenario(),
        paper::fig4_scenario(),
        paper::fig5_scenario(),
        paper::outage_scenario(),
    ] {
        scenario.validate();
        let mut short = scenario.clone();
        short.epochs = 1;
        let mut sim = Simulation::new(short);
        let obs = sim.step();
        assert_eq!(obs.report.epoch, 1);
        assert!(obs.report.total_vnodes() >= 600);
    }
}
