//! The observability layer's contract: metrics are a *write-only*
//! projection of the trajectory. Attaching a sink must not change a
//! single decision, and the exported numbers must agree with the epoch
//! reports the trajectory already produces.

use skute::prelude::*;
use skute::sim::paper;

fn tiny(seed: u64) -> Scenario {
    let mut s = paper::scaled_scenario("obs-tiny", 8, 4, 25);
    s.seed = seed;
    s
}

/// Runs a scenario and fingerprints the full trajectory.
fn trajectory(scenario: Scenario, registry: Option<&Registry>) -> Vec<(u64, usize, ActionCounts)> {
    let mut sim = Simulation::new(scenario);
    if let Some(registry) = registry {
        sim.attach_metrics(CloudMetrics::register(registry));
    }
    sim.run()
        .into_iter()
        .map(|o| (o.report.epoch, o.report.total_vnodes(), o.report.actions))
        .collect()
}

use skute::core::ActionCounts;

#[test]
fn metrics_sink_does_not_perturb_the_trajectory() {
    let registry = Registry::new();
    let without = trajectory(tiny(17), None);
    let with = trajectory(tiny(17), Some(&registry));
    assert_eq!(without, with, "attaching a metrics sink changed decisions");
}

#[test]
fn exported_counters_match_the_epoch_reports() {
    let registry = Registry::new();
    let scenario = tiny(3);
    let epochs = scenario.epochs;
    let mut sim = Simulation::new(scenario);
    sim.attach_metrics(CloudMetrics::register(&registry));
    let mut migrations = 0u64;
    // The sink rounds each epoch's query totals before counting, so the
    // oracle must accumulate the same per-epoch rounding.
    let mut offered = 0u64;
    for _ in 0..epochs {
        let obs = sim.step();
        migrations += obs.report.actions.migrations;
        let epoch_offered: f64 = obs.report.rings.iter().map(|r| r.queries_offered).sum();
        offered += epoch_offered.round() as u64;
    }
    sim.cloud().refresh_storage_metrics();
    let text = registry.render();
    // Counter lines carry exactly what the reports summed to.
    let line = |needle: &str| {
        text.lines()
            .find(|l| l.starts_with(needle))
            .unwrap_or_else(|| panic!("missing {needle} in exposition"))
            .rsplit(' ')
            .next()
            .unwrap()
            .parse::<f64>()
            .unwrap()
    };
    assert_eq!(line("skute_epochs_total") as u64, epochs);
    assert_eq!(
        line("skute_actions_total{action=\"migration\"}") as u64,
        migrations
    );
    assert_eq!(
        line("skute_queries_total{outcome=\"offered\"}") as u64,
        offered
    );
    // Phase histograms saw every epoch.
    assert_eq!(
        line("skute_epoch_phase_seconds_count{phase=\"decisions\"}") as u64,
        epochs
    );
    // JSON snapshot renders and carries the same families.
    let json = registry.render_json();
    assert!(json.contains("\"skute_epochs_total\""));
    assert!(json.contains("\"skute_epoch_phase_seconds\""));
}

#[test]
fn lsm_backend_exports_storage_engine_activity() {
    // Real record writes (not the simulator's synthetic byte-charges)
    // through LSM replicas must surface as WAL-append activity.
    let registry = Registry::new();
    let topology = Topology::paper();
    let cluster = Cluster::from_topology(&topology, |i, location| ServerSpec {
        location,
        capacities: Capacities::paper(4 << 30, 3_000.0),
        monthly_cost: if i % 10 < 7 { 100.0 } else { 125.0 },
        confidence: 1.0,
    });
    let config = SkuteConfig::paper()
        .with_seed(9)
        .with_backend(BackendKind::Lsm);
    let mut cloud = SkuteCloud::new(config, topology, cluster);
    cloud.set_metrics(CloudMetrics::register(&registry));
    let app = cloud
        .create_application(AppSpec::new("kv").level(LevelSpec::new(3, 8)))
        .unwrap();
    cloud.begin_epoch();
    for i in 0..32 {
        cloud
            .put(app, 0, format!("key-{i}").as_bytes(), vec![b'x'; 64])
            .unwrap();
    }
    cloud.end_epoch();
    cloud.refresh_storage_metrics();
    let text = registry.render();
    let wal: f64 = text
        .lines()
        .find(|l| l.starts_with("skute_storage_engine_ops{op=\"wal_append\"}"))
        .and_then(|l| l.rsplit(' ').next()?.parse().ok())
        .expect("wal_append gauge exported");
    assert!(wal > 0.0, "LSM replicas appended to their WALs");
}
