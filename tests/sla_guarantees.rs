//! Differentiated SLA guarantees: the core promise of the paper.
//!
//! Every availability level must converge to its calibrated threshold, the
//! thresholds must separate k−1 from k replicas, and rings must maintain
//! their guarantees independently while sharing the same 200 servers.

use skute::prelude::*;

fn paper_cloud(seed: u64) -> SkuteCloud {
    let topology = Topology::paper();
    let cluster = Cluster::from_topology(&topology, |i, location| ServerSpec {
        location,
        capacities: Capacities::paper(4 << 30, 3_000.0),
        monthly_cost: if i % 10 < 7 { 100.0 } else { 125.0 },
        confidence: 1.0,
    });
    SkuteCloud::new(SkuteConfig::paper().with_seed(seed), topology, cluster)
}

#[test]
fn thresholds_strictly_separate_replica_counts() {
    let topology = Topology::paper();
    let mut last = 0.0;
    for k in 1..=6 {
        let th = threshold_for_replicas(&topology, k, 0.2);
        assert!(th >= last, "thresholds must be monotone in k");
        last = th;
    }
    // k−1 greedily placed replicas can never meet th(k).
    for k in 2..=5 {
        let th = threshold_for_replicas(&topology, k, 0.2);
        let best_below = skute::core::greedy_max_availability(&topology, k - 1);
        assert!(best_below < th, "k−1 replicas must fail th({k})");
    }
}

#[test]
fn all_three_paper_levels_converge_and_hold() {
    let mut cloud = paper_cloud(0xA);
    let apps: Vec<AppId> = [2usize, 3, 4]
        .iter()
        .map(|&k| {
            cloud
                .create_application(AppSpec::new(format!("app-k{k}")).level(LevelSpec::new(k, 50)))
                .unwrap()
        })
        .collect();
    let mut last = None;
    for _ in 0..12 {
        cloud.begin_epoch();
        last = Some(cloud.end_epoch());
    }
    let report = last.unwrap();
    for (i, &k) in [2usize, 3, 4].iter().enumerate() {
        let ring = &report.rings[i];
        assert_eq!(ring.partitions, 50);
        assert_eq!(
            ring.vnodes,
            k * 50,
            "ring {i} must settle at exactly k·M replicas"
        );
        assert!(
            (ring.sla_satisfied_frac - 1.0).abs() < 1e-9,
            "ring {i} SLA satisfaction {}",
            ring.sla_satisfied_frac
        );
        let threshold = cloud.applications()[i].levels[0].threshold;
        assert!(ring.min_availability >= threshold);
    }
    let _ = apps;
}

#[test]
fn sla_replicas_are_geographically_scattered() {
    let mut cloud = paper_cloud(0xB);
    let app = cloud
        .create_application(AppSpec::new("spread").level(LevelSpec::new(3, 30)))
        .unwrap();
    for _ in 0..8 {
        cloud.begin_epoch();
        cloud.end_epoch();
    }
    for pid in cloud.partition_ids(app, 0).unwrap() {
        let servers = cloud.replica_servers(app, 0, pid).unwrap();
        let locations: Vec<Location> = servers
            .iter()
            .map(|s| cloud.cluster().get(*s).unwrap().location)
            .collect();
        // No two replicas of a partition may share a rack — availability at
        // th(3) = 88.2 is impossible otherwise.
        for i in 0..locations.len() {
            for j in (i + 1)..locations.len() {
                assert!(
                    diversity(&locations[i], &locations[j]) > 3,
                    "partition {pid}: replicas {i},{j} share a rack"
                );
            }
        }
    }
}

#[test]
fn higher_levels_cost_more_rent() {
    // Differentiated guarantees must be reflected in what the data owner
    // pays: a 4-replica ring pays roughly twice the rent of a 2-replica
    // ring with the same traffic.
    let mut cloud = paper_cloud(0xC);
    let low = cloud
        .create_application(AppSpec::new("low").level(LevelSpec::new(2, 40)))
        .unwrap();
    let high = cloud
        .create_application(AppSpec::new("high").level(LevelSpec::new(4, 40)))
        .unwrap();
    for _ in 0..10 {
        cloud.begin_epoch();
        cloud.end_epoch();
    }
    let low_vnodes = cloud.ring_vnodes(low, 0).unwrap();
    let high_vnodes = cloud.ring_vnodes(high, 0).unwrap();
    // Rent is per vnode per epoch, so vnode counts are the cost proxy.
    let ratio = high_vnodes as f64 / low_vnodes as f64;
    assert!(
        (ratio - 2.0).abs() < 0.15,
        "4-replica ring should cost ≈2× the 2-replica ring, got {ratio}"
    );
}

#[test]
fn confidence_weighting_demands_more_replicas() {
    // With low-confidence servers, eq. (2) availability shrinks, so the
    // same threshold needs more replicas: at conf 0.6 three perfectly
    // spread replicas reach only 189 × 0.36 = 68 < th(3) = 88.2, so a
    // fourth replica becomes mandatory.
    let topology = Topology::paper();
    let trusted = Cluster::from_topology(&topology, |_, location| ServerSpec {
        location,
        capacities: Capacities::paper(4 << 30, 3_000.0),
        monthly_cost: 100.0,
        confidence: 1.0,
    });
    let shaky = Cluster::from_topology(&topology, |_, location| ServerSpec {
        location,
        capacities: Capacities::paper(4 << 30, 3_000.0),
        monthly_cost: 100.0,
        confidence: 0.6,
    });
    let run = |cluster: Cluster| {
        let mut cloud = SkuteCloud::new(SkuteConfig::paper(), Topology::paper(), cluster);
        let app = cloud
            .create_application(AppSpec::new("a").level(LevelSpec::new(3, 30)))
            .unwrap();
        for _ in 0..10 {
            cloud.begin_epoch();
            cloud.end_epoch();
        }
        cloud.ring_vnodes(app, 0).unwrap()
    };
    let trusted_vnodes = run(trusted);
    let shaky_vnodes = run(shaky);
    assert!(
        shaky_vnodes > trusted_vnodes,
        "conf 0.6 cloud must hold more replicas ({shaky_vnodes}) than conf 1.0 ({trusted_vnodes})"
    );
}
