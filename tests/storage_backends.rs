//! Storage-backend integration: the virtual economy on the durable LSM
//! engine vs the in-memory oracle. The two backends replay bitwise
//! identical trajectories (decisions and the CSV consume only logical
//! byte accounting, which the engines share); only durability and the
//! *measured* transfer counters differ — under the LSM engine,
//! replication and migration move real WAL + SSTable bytes and the
//! transfer cost is priced from those, not the logical-size constant.

use skute::prelude::*;

const GIB: u64 = 1 << 30;
const MIB: f64 = (1024 * 1024) as f64;

fn cloud_on(backend: BackendKind) -> SkuteCloud {
    let topology = Topology::paper();
    let cluster = Cluster::from_topology(&topology, |i, location| ServerSpec {
        location,
        capacities: Capacities::paper(10 * GIB, 5_000.0),
        monthly_cost: if i % 10 < 7 { 100.0 } else { 125.0 },
        confidence: 1.0,
    });
    SkuteCloud::new(
        SkuteConfig::paper().with_backend(backend),
        topology,
        cluster,
    )
}

/// Ingests 200 real records and runs six epochs, so the availability
/// repairs of the convergence phase replicate partitions whose stores
/// hold materialized data. Returns the cloud, the app, and the per-epoch
/// reports.
fn drive(backend: BackendKind) -> (SkuteCloud, AppId, Vec<EpochReport>) {
    let mut cloud = cloud_on(backend);
    let app = cloud
        .create_application(AppSpec::new("kv").level(LevelSpec::new(3, 16)))
        .unwrap();
    cloud.begin_epoch();
    for i in 0..200u32 {
        cloud
            .put(app, 0, format!("key:{i:04}").as_bytes(), vec![i as u8; 64])
            .unwrap();
    }
    let mut reports = vec![cloud.end_epoch()];
    for _ in 0..5 {
        cloud.begin_epoch();
        reports.push(cloud.end_epoch());
    }
    (cloud, app, reports)
}

#[test]
fn lsm_replication_moves_real_bytes_and_prices_them() {
    let (_, _, reports) = drive(BackendKind::Lsm);
    let logical: u64 = reports.iter().map(|r| r.actions.replicated_bytes).sum();
    let measured: u64 = reports
        .iter()
        .map(|r| r.actions.measured_replicated_bytes)
        .sum();
    assert!(logical > 0, "the convergence phase replicates partitions");
    assert!(measured > 0, "LSM replication copies WAL/SSTable files");
    assert!(
        measured > logical,
        "physical bytes carry per-entry encoding overhead over the \
         logical sizes: measured {measured} vs logical {logical}"
    );
    // The transfer cost is derived from the *measured* bytes, not the
    // logical-size constant.
    let per_mib = EconomyConfig::paper().transfer_cost_per_mib;
    let priced: f64 = reports
        .iter()
        .map(|r| r.actions.transfer_cost(per_mib))
        .sum();
    assert!(priced > 0.0);
    let measured_total: u64 = reports
        .iter()
        .map(|r| r.actions.measured_transferred_bytes())
        .sum();
    let logical_total: u64 = reports.iter().map(|r| r.actions.transferred_bytes()).sum();
    let expected = per_mib * measured_total as f64 / MIB;
    let from_logical = per_mib * logical_total as f64 / MIB;
    assert!((priced - expected).abs() < 1e-12 * expected.max(1.0));
    assert!(
        priced > from_logical,
        "pricing from measured bytes exceeds the logical-size figure"
    );
}

#[test]
fn mem_oracle_measures_exactly_the_logical_bytes() {
    let (_, _, reports) = drive(BackendKind::Mem);
    assert!(
        reports.iter().any(|r| r.actions.replicated_bytes > 0),
        "the convergence phase replicates partitions"
    );
    for r in &reports {
        assert_eq!(
            r.actions.measured_replicated_bytes, r.actions.replicated_bytes,
            "in-memory transfers measure their logical size (epoch {})",
            r.epoch
        );
        assert_eq!(
            r.actions.measured_migrated_bytes, r.actions.migrated_bytes,
            "in-memory migrations measure their logical size (epoch {})",
            r.epoch
        );
    }
}

#[test]
fn fault_plans_never_perturb_the_trajectory() {
    // Injected storage faults (torn WAL tails, failed fsyncs, partial
    // flushes, bit-flip reads) are transient by construction: the engine
    // detects and retries every one, so the logical state — and with it
    // the whole economic trajectory — is bitwise identical faulted or
    // not, on either backend.
    let run = |backend: BackendKind, plan: FaultPlan| {
        let mut s = skute::sim::paper::scaled_scenario("fault-plans-it", 16, 3_000, 10);
        s.config.backend = backend;
        s.config.fault_plan = plan;
        Simulation::new(s).run()
    };
    let clean = run(BackendKind::Lsm, FaultPlan::default());
    for plan in [
        FaultPlan::all(0xFA17),
        FaultPlan {
            kind: FaultPlanKind::TornTails,
            seed: 0xFA17,
        },
    ] {
        let faulted = run(BackendKind::Lsm, plan);
        assert_eq!(clean.len(), faulted.len());
        for (a, b) in clean.iter().zip(&faulted) {
            assert_eq!(
                a, b,
                "epoch {} diverged under {:?}",
                a.report.epoch, plan.kind
            );
        }
    }
    // The mem oracle has no IO path to fault: a fault plan is inert on it
    // and its trajectory matches the (faulted) LSM runs epoch for epoch.
    let mem = run(BackendKind::Mem, FaultPlan::all(0xFA17));
    for (a, b) in clean.iter().zip(&mem) {
        let mut b = b.clone();
        b.report.actions.measured_replicated_bytes = a.report.actions.measured_replicated_bytes;
        b.report.actions.measured_migrated_bytes = a.report.actions.measured_migrated_bytes;
        assert_eq!(*a, b, "epoch {} diverged across backends", a.report.epoch);
    }
}

#[test]
fn injected_faults_actually_fire_and_are_absorbed() {
    // Real record traffic through an all-families fault plan: the engine
    // must hit injected faults (the counters prove the plan is live) and
    // absorb every one — the data reads back intact.
    let mut cloud = SkuteCloud::new(
        SkuteConfig::paper()
            .with_backend(BackendKind::Lsm)
            .with_fault_seed(0xFA17),
        Topology::paper(),
        Cluster::from_topology(&Topology::paper(), |i, location| ServerSpec {
            location,
            capacities: Capacities::paper(10 * GIB, 5_000.0),
            monthly_cost: if i % 10 < 7 { 100.0 } else { 125.0 },
            confidence: 1.0,
        }),
    );
    let app = cloud
        .create_application(AppSpec::new("kv").level(LevelSpec::new(3, 16)))
        .unwrap();
    cloud.begin_epoch();
    for i in 0..400u32 {
        cloud
            .put(app, 0, format!("key:{i:04}").as_bytes(), vec![i as u8; 64])
            .unwrap();
    }
    cloud.end_epoch();
    for _ in 0..5 {
        cloud.begin_epoch();
        cloud.end_epoch();
    }
    let total = cloud.fault_stats(app, 0).unwrap();
    assert!(
        total.total_retries() > 0,
        "the all-families plan must inject faults under real writes: {total:?}"
    );
    assert!(total.backoff_steps >= total.total_retries());
    for i in 0..400u32 {
        let key = format!("key:{i:04}");
        assert_eq!(
            cloud.get(app, 0, key.as_bytes()).unwrap().unwrap().as_ref(),
            &vec![i as u8; 64][..],
            "{key}"
        );
    }
}

#[test]
fn scrub_rebuilds_corrupted_replicas_from_healthy_peers() {
    let (mut cloud, app, _) = drive(BackendKind::Lsm);
    // Forge persistent corruption on one replica of each of four
    // partitions (bit damage that survives the bounded read retries).
    let pids = cloud.partition_ids(app, 0).unwrap();
    let mut corrupted = 0;
    for &pid in pids.iter().take(4) {
        if cloud.corrupt_replica(app, 0, pid, 0).unwrap() {
            corrupted += 1;
        }
    }
    assert!(corrupted > 0, "drive() materializes durable runs to damage");
    let report = cloud.scrub_quarantined(app, 0).unwrap();
    assert_eq!(report.replicas_quarantined, corrupted);
    assert_eq!(report.replicas_rebuilt, corrupted);
    assert_eq!(report.replicas_deferred, 0);
    assert_eq!(report.partitions_unrecoverable, 0);
    assert!(report.replicas_scanned >= pids.len());
    // The scrub leaves a healthy fleet behind.
    let clean = cloud.scrub_quarantined(app, 0).unwrap();
    assert_eq!(clean.replicas_quarantined, 0);
    assert_eq!(clean.replicas_rebuilt, 0);
    // And no acknowledged write was lost: every record reads back.
    for i in 0..200u32 {
        let key = format!("key:{i:04}");
        assert_eq!(
            cloud.get(app, 0, key.as_bytes()).unwrap().unwrap().as_ref(),
            &vec![i as u8; 64][..],
            "{key}"
        );
    }
}

#[test]
fn scrub_on_a_healthy_mem_fleet_is_inert() {
    let (mut cloud, app, _) = drive(BackendKind::Mem);
    let report = cloud.scrub_quarantined(app, 0).unwrap();
    assert!(report.replicas_scanned > 0);
    assert_eq!(report.replicas_quarantined, 0);
    assert_eq!(report.replicas_rebuilt, 0);
    assert_eq!(report.partitions_unrecoverable, 0);
}

#[test]
fn backends_replay_identical_trajectories() {
    let (mut mem, app_m, mem_reports) = drive(BackendKind::Mem);
    let (mut lsm, app_l, lsm_reports) = drive(BackendKind::Lsm);
    for (m, l) in mem_reports.iter().zip(&lsm_reports) {
        // Everything except the measured transfer counters is identical;
        // normalize those and compare the full reports.
        let mut l = l.clone();
        l.actions.measured_replicated_bytes = m.actions.measured_replicated_bytes;
        l.actions.measured_migrated_bytes = m.actions.measured_migrated_bytes;
        assert_eq!(*m, l, "epoch {} diverged across backends", m.epoch);
    }
    // Reads agree key for key.
    for i in 0..200u32 {
        let key = format!("key:{i:04}");
        assert_eq!(
            mem.get(app_m, 0, key.as_bytes()).unwrap(),
            lsm.get(app_l, 0, key.as_bytes()).unwrap(),
            "{key}"
        );
    }
}
