//! Differentiated availability guarantees (the paper's Fig. 1 scenario):
//! three applications share one cloud, each on its own virtual ring with a
//! different availability level — satisfied by 2, 3 and 4 replicas — and the
//! decentralized economy maintains all three simultaneously.
//!
//! Run with: `cargo run --release --example differentiated_sla`

use skute::prelude::*;

fn main() {
    let topology = Topology::paper();
    let cluster = Cluster::from_topology(&topology, |i, location| ServerSpec {
        location,
        capacities: Capacities::paper(4 << 30, 3_000.0),
        monthly_cost: if i % 10 < 7 { 100.0 } else { 125.0 },
        confidence: 1.0,
    });
    let mut cloud = SkuteCloud::new(SkuteConfig::paper(), topology, cluster);

    // Three tenants with increasing durability demands.
    let apps = [("blog", 2usize), ("shop", 3), ("bank", 4)].map(|(name, replicas)| {
        let id = cloud
            .create_application(AppSpec::new(name).level(LevelSpec::new(replicas, 32)))
            .expect("capacity");
        (name, replicas, id)
    });

    for (name, replicas, _) in &apps {
        let th = threshold_for_replicas(cloud.topology(), *replicas, 0.2);
        println!("{name:>5}: SLA needs {replicas} replicas, threshold {th:.1}");
    }

    // Let the economy converge.
    let mut last = None;
    for _ in 0..12 {
        cloud.begin_epoch();
        last = Some(cloud.end_epoch());
    }
    let report = last.unwrap();

    println!("\nafter convergence:");
    println!(
        "{:>5} {:>10} {:>14} {:>12} {:>8}",
        "app", "vnodes", "replicas/part", "mean avail", "SLA ok"
    );
    for (i, (name, replicas, _)) in apps.iter().enumerate() {
        let ring = &report.rings[i];
        println!(
            "{:>5} {:>10} {:>14.2} {:>12.1} {:>7.1}%",
            name,
            ring.vnodes,
            ring.vnodes as f64 / ring.partitions as f64,
            ring.mean_availability,
            100.0 * ring.sla_satisfied_frac,
        );
        assert!(
            ring.vnodes >= replicas * ring.partitions,
            "ring must reach its replica target"
        );
    }

    // Each ring is independent: the bank's ring has strictly more replicas
    // per partition than the blog's, on the very same 200 servers.
    let per_part = |i: usize| report.rings[i].vnodes as f64 / report.rings[i].partitions as f64;
    assert!(per_part(2) > per_part(1));
    assert!(per_part(1) > per_part(0));
    println!("\ndifferentiated guarantees hold on shared infrastructure ✓");
}
