//! Robustness to failures (the paper's §III-C / Fig. 3 in miniature): 20
//! servers are removed at once; every partition whose availability dropped
//! below its SLA threshold replicates to fresh, geographically diverse
//! servers within a few epochs — and data written before the failure is
//! still readable afterwards.
//!
//! Run with: `cargo run --release --example failure_recovery`

use skute::prelude::*;

fn main() {
    let mut scenario = skute::sim::paper::scaled_scenario("failures-mini", 32, 3_000, 1);
    scenario.schedule = Schedule::new().at(15, CloudEvent::RemoveServers { count: 20 });
    scenario.epochs = 30;
    let mut sim = Simulation::new(scenario);

    // Write real data into every app before anything fails.
    let apps: Vec<AppId> = sim.apps().to_vec();
    sim.cloud_mut().begin_epoch();
    for (a, app) in apps.iter().enumerate() {
        for i in 0..50u32 {
            let key = format!("app{a}:key{i}");
            sim.cloud_mut()
                .put(
                    *app,
                    0,
                    key.as_bytes(),
                    format!("value-{a}-{i}").into_bytes(),
                )
                .expect("write quorum");
        }
    }
    sim.cloud_mut().end_epoch();

    println!(
        "{:>5} {:>7} {:>12} {:>12} {:>12} {:>8}",
        "epoch", "alive", "sla0", "sla1", "sla2", "repairs"
    );
    for epoch in 0..30 {
        let obs = sim.step();
        let r = &obs.report;
        if (12..=24).contains(&epoch) || epoch % 10 == 0 {
            println!(
                "{:>5} {:>7} {:>11.1}% {:>11.1}% {:>11.1}% {:>8}",
                r.epoch,
                r.alive_servers,
                100.0 * r.rings[0].sla_satisfied_frac,
                100.0 * r.rings[1].sla_satisfied_frac,
                100.0 * r.rings[2].sla_satisfied_frac,
                r.actions.availability_replications,
            );
        }
    }

    // All data survived the 20-server burst.
    let mut verified = 0;
    for (a, app) in apps.iter().enumerate() {
        for i in 0..50u32 {
            let key = format!("app{a}:key{i}");
            let value = sim
                .cloud_mut()
                .get(*app, 0, key.as_bytes())
                .expect("read quorum")
                .unwrap_or_else(|| panic!("{key} lost"));
            assert_eq!(value.as_ref(), format!("value-{a}-{i}").as_bytes());
            verified += 1;
        }
    }
    println!("\nverified {verified}/150 keys readable after losing 20 of 200 servers ✓");
}
