//! Quickstart: spin up the paper's 200-server cloud, register an
//! application with a 3-replica availability SLA, store data, and watch the
//! virtual economy replicate every partition to its target.
//!
//! Run with: `cargo run --release --example quickstart`

use skute::prelude::*;

fn main() {
    // The paper's physical layout: 10 countries on 5 continents,
    // 2 datacenters per country, 2 racks per room, 5 servers per rack.
    let topology = Topology::paper();
    let cluster = Cluster::from_topology(&topology, |i, location| ServerSpec {
        location,
        capacities: Capacities::paper(4 << 30, 3_000.0),
        monthly_cost: if i % 10 < 7 { 100.0 } else { 125.0 },
        confidence: 1.0,
    });
    println!(
        "cloud: {} servers, {} countries, total storage {} GiB",
        cluster.alive_count(),
        topology.country_count(),
        cluster.total_storage() >> 30
    );

    let mut cloud = SkuteCloud::new(SkuteConfig::paper(), topology, cluster);

    // One application, one availability level satisfied by 3 replicas.
    let app = cloud
        .create_application(AppSpec::new("photos").level(LevelSpec::new(3, 64)))
        .expect("cluster has capacity");
    let threshold = cloud.applications()[0].levels[0].threshold;
    println!("SLA: 3 replicas, availability threshold {threshold:.1} (eq. 2 units)");

    // Write some data.
    cloud.begin_epoch();
    for i in 0..100u32 {
        let key = format!("user:{i}:profile");
        cloud
            .put(app, 0, key.as_bytes(), format!("profile-{i}").into_bytes())
            .expect("write quorum");
    }
    cloud.end_epoch();

    // Run epochs: partitions bootstrap from 1 replica to the SLA target.
    for epoch in 0..8 {
        cloud.begin_epoch();
        let report = cloud.end_epoch();
        let ring = &report.rings[0];
        println!(
            "epoch {epoch:>2}: vnodes={:<4} mean_avail={:>6.1} sla_ok={:>5.1}% repairs={} migrations={}",
            ring.vnodes,
            ring.mean_availability,
            100.0 * ring.sla_satisfied_frac,
            report.actions.availability_replications,
            report.actions.migrations,
        );
    }

    // Reads still return the data, now served by 3 scattered replicas.
    let value = cloud
        .get(app, 0, b"user:42:profile")
        .expect("read quorum")
        .expect("key exists");
    println!(
        "read back user:42:profile = {:?}",
        String::from_utf8_lossy(&value)
    );

    // Inspect one partition's replica placement.
    let pid = cloud.partition_ids(app, 0).unwrap()[0];
    let servers = cloud.replica_servers(app, 0, pid).unwrap();
    println!("partition {pid} replicas:");
    for id in servers {
        let s = cloud.cluster().get(id).unwrap();
        println!("  {id} at {} (cost ${}/month)", s.location, s.monthly_cost);
    }
}
