//! Adaptation to a query-load spike (the paper's §III-D / Fig. 4 in
//! miniature): a Slashdot-style surge hits three applications that attract
//! 4/7, 2/7 and 1/7 of the traffic; popular partitions replicate for profit
//! while the load stays balanced across servers, then the extra replicas
//! suicide as the wave recedes.
//!
//! Run with: `cargo run --release --example slashdot_spike`

use skute::prelude::*;

fn main() {
    let mut scenario = skute::sim::paper::scaled_scenario("slashdot-mini", 32, 3_000, 120);
    scenario.trace = TraceKind::Slashdot(SlashdotTrace {
        base: 3_000.0,
        peak: 60_000.0,
        spike_start: 20,
        ramp_epochs: 10,
        decay_epochs: 60,
    });
    scenario.load_fractions = vec![4.0, 2.0, 1.0];
    let mut sim = Simulation::new(scenario);

    println!(
        "{:>5} {:>9} {:>8} {:>8} {:>8} {:>7} {:>7} {:>8}",
        "epoch", "rate", "ring0", "ring1", "ring2", "repl+", "kills", "load_cv"
    );
    let mut peak_vnodes = 0usize;
    let mut base_vnodes = 0usize;
    for epoch in 0..120 {
        let obs = sim.step();
        let r = &obs.report;
        if epoch == 15 {
            base_vnodes = r.total_vnodes();
        }
        peak_vnodes = peak_vnodes.max(r.total_vnodes());
        if epoch % 10 == 0 || (20..=35).contains(&epoch) && epoch % 5 == 0 {
            println!(
                "{:>5} {:>9.0} {:>8} {:>8} {:>8} {:>7} {:>7} {:>8.3}",
                r.epoch,
                obs.offered_rate,
                r.rings[0].vnodes,
                r.rings[1].vnodes,
                r.rings[2].vnodes,
                r.actions.profit_replications,
                r.actions.suicides,
                r.rings[0].load_cv,
            );
        }
    }
    println!(
        "\nvnodes before spike: {base_vnodes}, at peak: {peak_vnodes} \
         (popular partitions replicated {}×)",
        peak_vnodes as f64 / base_vnodes.max(1) as f64
    );
    assert!(
        peak_vnodes >= base_vnodes,
        "the system must scale out, not shrink"
    );
}
