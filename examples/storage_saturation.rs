//! Storage saturation (the paper's §III-E / Fig. 5 in miniature): a steady
//! insert stream fills the cloud; the economy keeps storage balanced so
//! inserts keep succeeding until used capacity approaches the total, and
//! partitions split whenever they cross the 256 MB cap.
//!
//! Run with: `cargo run --release --example storage_saturation`

use skute::prelude::*;

fn main() {
    let mut scenario = skute::sim::paper::scaled_scenario("saturation-mini", 16, 1_000, 80);
    // Small servers so saturation arrives quickly; partitions split at
    // 16 MiB so they always stay an order of magnitude below a server's
    // capacity and can keep migrating as the cloud fills up.
    scenario.server_storage_bytes = 256 << 20; // 256 MiB each
    scenario.config.split_threshold_bytes = 16 << 20;
    for app in &mut scenario.apps {
        app.initial_partition_bytes = 4 << 20;
    }
    scenario.inserts = Some(InsertGenerator {
        rate_per_epoch: 400.0,
        object_bytes: 500 * 1000,
        key_dist: Pareto::paper(),
        unique_key_factor: 1000,
    });
    let mut sim = Simulation::new(scenario);

    println!(
        "{:>5} {:>10} {:>12} {:>9} {:>8}",
        "epoch", "used %", "failures", "splits", "vnodes"
    );
    let mut first_failure_frac: Option<f64> = None;
    for epoch in 0..80 {
        let obs = sim.step();
        let r = &obs.report;
        if r.insert_failures > 0 && first_failure_frac.is_none() {
            first_failure_frac = Some(r.storage_frac());
        }
        if epoch % 8 == 0 || r.insert_failures > 0 && first_failure_frac == Some(r.storage_frac()) {
            println!(
                "{:>5} {:>9.1}% {:>12} {:>9} {:>8}",
                r.epoch,
                100.0 * r.storage_frac(),
                r.insert_failures,
                r.actions.splits,
                r.total_vnodes(),
            );
        }
    }
    match first_failure_frac {
        Some(frac) => println!(
            "\nfirst insert failure at {:.1}% used capacity (paper: no losses up to ~96%)",
            100.0 * frac
        ),
        None => println!("\nno insert failures — the cloud absorbed the whole stream"),
    }
}
